"""Tests for tokenisation and part-of-speech tagging."""

from __future__ import annotations

from repro.nlp import PosTag, PosTagger, Tokenizer, content_words, normalize


class TestTokenizer:
    def setup_method(self):
        self.tokenizer = Tokenizer()

    def test_identifiers_are_single_tokens(self):
        tokens = self.tokenizer.tokenize("a timeout in process_transaction occurs")
        texts = [token.text for token in tokens]
        assert "process_transaction" in texts

    def test_dotted_identifiers_are_single_tokens(self):
        tokens = self.tokenizer.tokenize("call OrderService.place_order now")
        assert any(token.text == "OrderService.place_order" for token in tokens)

    def test_call_style_identifiers(self):
        tokens = self.tokenizer.tokenize("the close() call is missing")
        assert any(token.text == "close()" and token.is_identifier for token in tokens)

    def test_offsets_point_back_into_text(self):
        text = "introduce a race condition"
        for token in self.tokenizer.tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_percentages_and_numbers(self):
        tokens = self.tokenizer.tokenize("fail 30% of the time after 2.5 seconds")
        percentage = next(token for token in tokens if token.text == "30%")
        number = next(token for token in tokens if token.text == "2.5")
        assert percentage.is_percentage and percentage.numeric_value() == 30.0
        assert number.is_number and number.numeric_value() == 2.5

    def test_sentences_split_on_terminators(self):
        sentences = self.tokenizer.sentences("First sentence. Second one! Third?")
        assert len(sentences) == 3

    def test_words_lowercase_and_skip_punctuation(self):
        words = self.tokenizer.words("Fail, then Retry!")
        assert words == ["fail", "then", "retry"]

    def test_ngrams_include_bigrams(self):
        ngrams = set(self.tokenizer.ngrams("race condition occurs", max_n=2))
        assert "race condition" in ngrams
        assert "race" in ngrams

    def test_normalize_collapses_whitespace_and_quotes(self):
        assert normalize("a  “fault”   here") == 'a "fault" here'


class TestPosTagger:
    def setup_method(self):
        self.tagger = PosTagger()

    def tags_for(self, text):
        return {item.text: item.tag for item in self.tagger.tag(text)}

    def test_identifiers_tagged_ident(self):
        tags = self.tags_for("inject a fault into process_transaction")
        assert tags["process_transaction"] is PosTag.IDENT

    def test_verbs_and_nouns(self):
        tags = self.tags_for("introduce a race condition in the database")
        assert tags["introduce"] is PosTag.VERB
        assert tags["database"] is PosTag.NOUN

    def test_exception_names_tagged_ident(self):
        tags = self.tags_for("raise a TimeoutError here")
        assert tags["TimeoutError"] is PosTag.IDENT

    def test_numbers_tagged_num(self):
        tags = self.tags_for("wait 5 seconds")
        assert tags["5"] is PosTag.NUM

    def test_adverbs_by_suffix(self):
        tags = self.tags_for("the error is silently ignored")
        assert tags["silently"] is PosTag.ADV

    def test_prepositions_and_determiners(self):
        tags = self.tags_for("within the function")
        assert tags["within"] is PosTag.PREP
        assert tags["the"] is PosTag.DET

    def test_punctuation(self):
        tags = self.tags_for("fails, badly")
        assert tags[","] is PosTag.PUNCT

    def test_content_words_filters_stopwords(self):
        tagged = self.tagger.tag("introduce a timeout in the checkout function")
        words = {item.lower for item in content_words(tagged)}
        assert "timeout" in words
        assert "checkout" in words
        assert "the" not in words
        assert "a" not in words
