"""Tests for feedback parsing, preference data, and the reward model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RLHFConfig
from repro.errors import FeedbackError, RewardModelError
from repro.llm import FaultGenerator
from repro.rlhf import (
    CandidateFeaturizer,
    FeedbackParser,
    PreferenceDataset,
    PreferencePair,
    RewardModel,
    merge_directives,
)
from repro.rng import SeededRNG


class TestFeedbackParser:
    def setup_method(self):
        self.parser = FeedbackParser()

    def test_running_example_feedback(self):
        directives = self.parser.directives_from_text(
            "introduce a retry mechanism instead of just logging the error"
        )
        assert directives["handling"] == "retry"
        assert directives["wants_retry"] is True
        assert directives["replaces_previous_behaviour"] is True

    def test_fallback_feedback(self):
        directives = self.parser.directives_from_text("fall back to a default value instead of failing")
        assert directives["handling"] == "fallback"

    def test_unhandled_feedback(self):
        directives = self.parser.directives_from_text("leave the exception unhandled")
        assert directives["handling"] == "unhandled"

    def test_fault_type_change_requested(self):
        directives = self.parser.directives_from_text("this should be a memory leak, not a crash")
        assert directives["fault_type"] == "memory_leak"

    def test_trigger_change_requested(self):
        directives = self.parser.directives_from_text("make the fault intermittent, only sometimes")
        assert directives["trigger"] == "probabilistic"
        always = self.parser.directives_from_text("make the fault happen every time")
        assert always["trigger"] == "always"

    def test_severity_directives(self):
        assert self.parser.directives_from_text("make the failure more severe")["severity"] == "high"
        assert self.parser.directives_from_text("use a smaller delay please")["severity"] == "low"

    def test_empty_critique_yields_no_directives(self):
        assert self.parser.directives_from_text("") == {}

    def test_parse_builds_feedback_record(self):
        feedback = self.parser.parse("fault-1", "add a retry mechanism", rating=3.5)
        assert feedback.fault_id == "fault-1"
        assert feedback.rating == 3.5
        assert feedback.directives["wants_retry"]
        assert not feedback.accept

    def test_parse_default_ratings(self):
        assert self.parser.parse("f", "", accept=True).rating == 5.0
        assert self.parser.parse("f", "add retries").rating == 3.0
        assert self.parser.parse("f", "no recognisable directive words here at all").rating == 2.0

    def test_parse_rejects_out_of_range_rating(self):
        with pytest.raises(FeedbackError):
            self.parser.parse("f", "fine", rating=9.0)

    def test_merge_directives_later_wins(self):
        merged = merge_directives({"handling": "retry", "severity": "low"}, {"severity": "high"})
        assert merged == {"handling": "retry", "severity": "high"}


class TestPreferenceDataset:
    def test_add_comparison_and_iterate(self):
        dataset = PreferenceDataset()
        dataset.add_comparison(np.ones(4), np.zeros(4), chosen_id="a", rejected_id="b")
        assert len(dataset) == 1
        assert dataset.feature_dimension == 4

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(RewardModelError):
            PreferencePair(chosen_features=np.ones(3), rejected_features=np.ones(4))

    def test_mixed_dimensions_rejected(self):
        dataset = PreferenceDataset()
        dataset.add_comparison(np.ones(4), np.zeros(4))
        with pytest.raises(RewardModelError):
            dataset.add_comparison(np.ones(5), np.zeros(5))

    def test_ranking_expansion(self):
        dataset = PreferenceDataset()
        ranked = [("a", np.array([3.0, 0.0])), ("b", np.array([2.0, 0.0])), ("c", np.array([1.0, 0.0]))]
        added = dataset.add_ranking(ranked, margins=[3.0, 2.0, 1.0])
        assert added == 3
        assert len(dataset) == 3

    def test_empty_dataset_dimension_raises(self):
        with pytest.raises(RewardModelError):
            PreferenceDataset().feature_dimension


class TestRewardModel:
    def make_dataset(self, dimension=6, pairs=40, seed=3):
        rng = SeededRNG(seed)
        true_weights = np.linspace(1.0, -1.0, dimension)
        dataset = PreferenceDataset()
        for _ in range(pairs):
            first = np.array(rng.normal(size=dimension))
            second = np.array(rng.normal(size=dimension))
            if true_weights @ first >= true_weights @ second:
                dataset.add_comparison(first, second)
            else:
                dataset.add_comparison(second, first)
        return dataset

    def test_fit_learns_to_order_pairs(self):
        dataset = self.make_dataset()
        model = RewardModel(dimension=6, config=RLHFConfig(reward_epochs=80, reward_learning_rate=0.5))
        report = model.fit(dataset)
        assert model.trained
        assert report.pairwise_accuracy >= 0.85
        assert report.losses[-1] < report.losses[0]

    def test_score_shape_validation(self):
        model = RewardModel(dimension=4)
        with pytest.raises(RewardModelError):
            model.score(np.ones(5))

    def test_preference_probability_is_symmetric(self):
        model = RewardModel(dimension=3)
        model.weights = np.array([1.0, 0.0, 0.0])
        better = np.array([2.0, 0.0, 0.0])
        worse = np.array([0.0, 0.0, 0.0])
        p = model.preference_probability(better, worse)
        assert p > 0.5
        assert model.preference_probability(worse, better) == pytest.approx(1.0 - p)

    def test_dimension_mismatch_on_fit(self):
        model = RewardModel(dimension=3)
        with pytest.raises(RewardModelError):
            model.fit(self.make_dataset(dimension=5, pairs=4))

    def test_state_round_trip(self):
        dataset = self.make_dataset(pairs=10)
        model = RewardModel(dimension=6)
        model.fit(dataset)
        clone = RewardModel(dimension=6)
        clone.load_state(model.state_dict())
        probe = np.ones(6)
        assert clone.score(probe) == pytest.approx(model.score(probe))


class TestCandidateFeaturizer:
    def test_dimension_and_decision_encoding(self, fault_generator, sample_prompt):
        featurizer = CandidateFeaturizer(fault_generator.encoder)
        candidate = fault_generator.generate(sample_prompt)
        features = featurizer.featurize(sample_prompt, candidate)
        assert features.shape == (featurizer.dimension,)
        # Exactly one decision per slot is one-hot encoded.
        decision_block = features[fault_generator.encoder.dimension : -6]
        assert decision_block.sum() == pytest.approx(5.0)

    def test_different_candidates_have_different_features(self, fault_generator, sample_prompt):
        featurizer = CandidateFeaturizer(fault_generator.encoder)
        candidates = fault_generator.candidates(sample_prompt, count=3)
        encoded = [featurizer.featurize(sample_prompt, candidate) for candidate in candidates]
        assert not np.allclose(encoded[0], encoded[1]) or not np.allclose(encoded[0], encoded[2])
