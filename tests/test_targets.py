"""Tests for the target systems: baselines, workloads, and invariant checks."""

from __future__ import annotations

import pytest

from repro.errors import TargetError
from repro.injection import ProgrammableInjector
from repro.targets import TargetRunResult, all_targets, get_target, target_names


class TestRegistry:
    def test_four_targets_registered(self):
        assert set(target_names()) == {"ecommerce", "kvstore", "bank", "queue"}

    def test_get_target_unknown_raises(self):
        with pytest.raises(TargetError):
            get_target("does-not-exist")

    def test_registry_returns_singletons(self):
        assert get_target("bank") is get_target("bank")


@pytest.mark.parametrize("target_name", ["ecommerce", "kvstore", "bank", "queue"])
class TestEveryTarget:
    def test_baseline_is_clean(self, target_name):
        result = get_target(target_name).baseline(iterations=30, seed=1)
        assert result.completed
        assert result.violations == []
        assert isinstance(result, TargetRunResult)

    def test_workload_is_deterministic_for_a_seed(self, target_name):
        target = get_target(target_name)
        first = target.execute(iterations=25, seed=9)
        second = target.execute(iterations=25, seed=9)
        first_metrics = {k: v for k, v in first.metrics.items() if isinstance(v, (int, str, bool))}
        second_metrics = {k: v for k, v in second.metrics.items() if isinstance(v, (int, str, bool))}
        assert first_metrics == second_metrics

    def test_different_seeds_change_the_workload(self, target_name):
        target = get_target(target_name)
        first = target.execute(iterations=30, seed=1)
        second = target.execute(iterations=30, seed=2)
        assert first.metrics != second.metrics

    def test_functions_listed(self, target_name):
        functions = get_target(target_name).functions()
        assert len(functions) >= 8

    def test_has_rich_injection_surface(self, target_name):
        target = get_target(target_name)
        points = ProgrammableInjector().locator.scan(target.build_source())
        assert len(points) > 80

    def test_crash_is_reported_not_raised(self, target_name):
        target = get_target(target_name)
        broken = target.build_source() + "\nraise RuntimeError('boom at import')\n"
        result = target.execute(source=broken, iterations=5, seed=0)
        assert not result.completed
        assert result.error_type is not None

    def test_to_dict_round_trips_json(self, target_name):
        import json

        result = get_target(target_name).execute(iterations=10, seed=0)
        json.dumps(result.to_dict())


class TestInvariantSensitivity:
    """Injected faults of the right kind must trip each target's own checks."""

    def test_ecommerce_detects_pricing_corruption(self):
        target = get_target("ecommerce")
        injector = ProgrammableInjector()
        applied = injector.inject_fault_type(
            target.build_source(), fault_type=__import__("repro.types", fromlist=["FaultType"]).FaultType.DATA_CORRUPTION,
            function_name="compute_total",
        )
        result = target.execute(source=applied.patch.mutated, iterations=25, seed=3)
        assert result.completed
        assert result.violations

    def test_ecommerce_detects_session_leak(self):
        from repro.injection import get_operator

        target = get_target("ecommerce")
        operator = get_operator("remove_call")
        source = target.build_source()
        points = [p for p in operator.find_points(source) if p.detail == "close_session"]
        assert points
        applied = operator.apply(source, points[0])
        result = target.execute(source=applied.patch.mutated, iterations=20, seed=3)
        assert any("sessions" in violation for violation in result.violations)

    def test_bank_detects_money_conservation_violation(self):
        from repro.injection import get_operator

        target = get_target("bank")
        # Dropping one side of the transfer's double-entry update destroys money.
        operator = get_operator("remove_assignment")
        source = target.build_source()
        points = [p for p in operator.find_points(source) if p.function == "transfer"]
        assert points
        applied = operator.apply(source, points[0])
        result = target.execute(source=applied.patch.mutated, iterations=30, seed=3)
        assert result.completed
        assert any("conserved" in violation or "overdrawn" in violation for violation in result.violations)

    def test_kvstore_detects_stale_reads(self):
        from repro.injection import get_operator

        target = get_target("kvstore")
        operator = get_operator("wrong_return_value")
        source = target.build_source()
        points = [
            p for p in operator.find_points(source)
            if p.function == "get" and "_data" in p.detail
        ]
        assert points
        applied = operator.apply(source, points[0])
        result = target.execute(source=applied.patch.mutated, iterations=60, seed=3)
        assert result.completed
        assert result.violations

    def test_queue_detects_lost_messages(self):
        from repro.injection import get_operator

        target = get_target("queue")
        operator = get_operator("remove_call")
        source = target.build_source()
        points = [p for p in operator.find_points(source) if "acknowledge" in p.detail]
        assert points
        applied = operator.apply(source, points[0])
        result = target.execute(source=applied.patch.mutated, iterations=30, seed=3)
        assert result.completed
        assert result.violations

    def test_pristine_baseline_raises_if_broken(self):
        target = get_target("bank")
        with pytest.raises(TargetError):
            # Loading a module that fails on import must surface as a TargetError
            # in baseline(), not slip through as a silent failure.
            target.load_module("raise RuntimeError('nope')\n")
