"""Property tests: distributed reassembly is order- and byte-stable.

Hypothesis drives arbitrary worker-death and slow-heartbeat schedules against
a real ``DistributedPool`` (real localhost sockets, scripted in-process
workers — no subprocess spawn) and asserts the two distributed-plane
guarantees hold under every schedule:

* results come back **in submission order**, keyed by task id;
* payloads are **byte-identical** to what a failure-free run produces,
  no matter which worker served which lease, which workers died, or in what
  order results arrived.

One immortal worker joins after the mortal fleet, and retry budgets are set
above the largest possible death count, so every schedule terminates with a
fully successful batch — which is exactly the determinism claim.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DistributedConfig, ResilienceConfig
from repro.distributed import (
    DistributedPool,
    GoodbyeFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    recv_frame,
    send_frame,
)

pytestmark = pytest.mark.pool

#: Per-lease worker behaviours hypothesis may schedule.  ``die`` drops the
#: connection mid-lease; ``drop`` answers with the result missing (requeue);
#: ``slow`` delays the RESULT past several heartbeat intervals (late results
#: must not corrupt reassembly); ``ok`` serves normally.
ACTIONS = ("ok", "die", "drop", "slow")


def _expected_payload(task: dict) -> dict:
    return {
        "status": "ok",
        "result": {"echo": task["source"], "task": str(task["task_id"])},
    }


class _ScheduledWorker(threading.Thread):
    """A protocol-speaking worker that follows a hypothesis-drawn script."""

    def __init__(self, pool: DistributedPool, name: str, script: tuple[str, ...]):
        super().__init__(name=f"sched-{name}", daemon=True)
        self.pool = pool
        self.script = list(script)

    def run(self) -> None:
        host, port = self.pool.address
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            return
        try:
            send_frame(sock, HelloFrame(worker_id=self.name, capacity=1))
            assert isinstance(recv_frame(sock), RegisterFrame)
            while True:
                frame = recv_frame(sock)
                if isinstance(frame, GoodbyeFrame):
                    return
                assert isinstance(frame, LeaseFrame)
                action = self.script.pop(0) if self.script else "ok"
                if action == "die":
                    return
                if action == "slow":
                    # Heartbeat while stalling so the lease is NOT requeued —
                    # this exercises out-of-order result arrival instead.
                    import time

                    from repro.distributed import HeartbeatFrame

                    for _ in range(3):
                        time.sleep(self.pool.distributed.heartbeat_interval_seconds)
                        send_frame(
                            sock,
                            HeartbeatFrame(worker_id=self.name, lease_id=frame.lease_id),
                        )
                results = {}
                if action in ("ok", "slow"):
                    results = {
                        str(task["task_id"]): _expected_payload(task) for task in frame.tasks
                    }
                send_frame(sock, ResultFrame(lease_id=frame.lease_id, results=results))
        except (ConnectionError, OSError):
            return
        finally:
            sock.close()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=st.data(),
    task_count=st.integers(min_value=1, max_value=6),
    mortal_workers=st.integers(min_value=0, max_value=3),
)
def test_reassembly_is_order_preserving_and_byte_identical(data, task_count, mortal_workers):
    sources = [f"module_{index}" for index in range(task_count)]
    scripts = [
        tuple(
            data.draw(st.sampled_from(ACTIONS), label=f"worker{w}-lease{l}")
            for l in range(data.draw(st.integers(min_value=1, max_value=3), label=f"worker{w}-len"))
        )
        for w in range(mortal_workers)
    ]
    # Budgets sized above any possible disruption count so every schedule
    # converges on a fully successful batch.
    max_disruptions = sum(len(script) for script in scripts) + 1
    resilience = ResilienceConfig(
        task_retry_budget=max_disruptions + task_count,
        quarantine_threshold=max_disruptions + task_count,
    )
    pool = DistributedPool(
        max_workers=2,
        task_timeout_seconds=5.0,
        resilience=resilience,
        distributed=DistributedConfig(
            spawn_workers=False,
            worker_wait_seconds=10.0,
            heartbeat_interval_seconds=0.05,
            heartbeat_timeout_seconds=0.6,
        ),
    )
    try:
        for index, script in enumerate(scripts):
            _ScheduledWorker(pool, f"mortal-{index}", script).start()
        _ScheduledWorker(pool, "immortal", ()).start()
        payloads = pool.run_batch("bank", sources, seed=13, iterations=1)
    finally:
        pool.shutdown()

    expected = [
        _expected_payload({"source": source, "task_id": str(index)})
        for index, source in enumerate(sources)
    ]
    assert json.dumps(payloads, sort_keys=True) == json.dumps(expected, sort_keys=True)
