"""Tests for the end-to-end pipeline, refinement sessions, and workflow traces."""

from __future__ import annotations

import pytest

from repro.core import RefinementSession, WORKFLOW_STAGES, WorkflowTrace
from repro.errors import FeedbackError
from repro.rlhf import SimulatedTester, PreferenceProfile
from repro.targets import get_target
from repro.types import FailureMode, FaultType, HandlingStyle


class TestPreparation:
    def test_prepare_builds_dataset_and_trains(self, prepared_pipeline):
        assert prepared_pipeline.dataset is not None
        assert len(prepared_pipeline.dataset) > 0
        assert prepared_pipeline.sft_report is not None
        assert prepared_pipeline.sft_report.final_loss < prepared_pipeline.sft_report.initial_loss

    def test_run_rlhf_records_report(self, prepared_pipeline, sample_module, running_example_text):
        spec, context = prepared_pipeline.define_fault(running_example_text, code=sample_module)
        prompt = prepared_pipeline.build_prompt(spec, context)
        report = prepared_pipeline.run_rlhf([prompt])
        assert prepared_pipeline.rlhf_report is report
        assert len(report.iterations) == prepared_pipeline.config.rlhf.iterations


class TestDefinitionAndGeneration:
    def test_define_fault_extracts_spec_and_context(self, prepared_pipeline, sample_module, running_example_text):
        spec, context = prepared_pipeline.define_fault(running_example_text, code=sample_module)
        assert spec.fault_type is FaultType.TIMEOUT
        assert context is not None
        assert context.selected_function == "process_transaction"

    def test_define_fault_without_code(self, prepared_pipeline):
        spec, context = prepared_pipeline.define_fault("introduce a memory leak in the cache layer")
        assert context is None
        assert spec.fault_type is FaultType.MEMORY_LEAK

    def test_code_context_can_be_disabled(self, fast_pipeline_config, sample_module, running_example_text):
        import dataclasses

        from repro import NeuralFaultInjector

        config = dataclasses.replace(fast_pipeline_config, use_code_context=False)
        pipeline = NeuralFaultInjector(config)
        _spec, context = pipeline.define_fault(running_example_text, code=sample_module)
        assert context is None

    def test_inject_one_shot(self, prepared_pipeline, sample_module, running_example_text):
        fault = prepared_pipeline.inject(running_example_text, code=sample_module)
        assert "TimeoutError" in fault.code
        assert fault.patch is not None

    def test_refine_applies_feedback(self, prepared_pipeline, sample_module, running_example_text):
        spec, context = prepared_pipeline.define_fault(running_example_text, code=sample_module)
        prompt = prepared_pipeline.build_prompt(spec, context)
        initial = prepared_pipeline.generate_fault(prompt)
        refined_spec, refined = prepared_pipeline.refine(
            spec, context, "introduce a retry mechanism instead of just logging the error", iteration=1
        )
        assert refined_spec.handling is HandlingStyle.RETRY
        assert refined.decisions.handling == "retry"
        assert refined.fault.iteration == 1
        assert initial.decisions.handling != "retry"


class TestWorkflow:
    def test_full_workflow_trace(self, prepared_pipeline):
        trace = prepared_pipeline.run_workflow(
            "Simulate a timeout in process_transaction causing an unhandled exception",
            target="ecommerce",
            mode="inprocess",
        )
        assert trace.succeeded
        assert [stage.stage for stage in trace.stages] == list(WORKFLOW_STAGES)
        assert trace.outcome is not None
        assert trace.outcome.failure_mode in (FailureMode.CRASH, FailureMode.ERROR_DETECTED)
        assert trace.total_seconds > 0.0
        assert trace.to_dict()["succeeded"] is True

    def test_workflow_without_target_stops_after_refinement(self, prepared_pipeline, sample_module):
        trace = prepared_pipeline.run_workflow(
            "Introduce a race condition in process_transaction", code=sample_module
        )
        assert trace.outcome is None
        assert "integration" not in [stage.stage for stage in trace.stages]
        assert trace.fault is not None

    def test_workflow_with_simulated_tester_feedback(self, prepared_pipeline):
        tester = SimulatedTester(profile=PreferenceProfile(name="retry", preferred_handling=HandlingStyle.RETRY))
        trace = prepared_pipeline.run_workflow(
            "Simulate a timeout in process_transaction causing an unhandled exception",
            target="ecommerce",
            feedback=tester,
            mode="inprocess",
        )
        assert trace.feedback_rounds >= 1
        assert trace.fault.actions["handling"] == "retry"

    def test_workflow_with_callable_feedback(self, prepared_pipeline):
        calls = []

        def feedback(spec, candidate):
            if not calls:
                calls.append(1)
                return "make the fault intermittent so it only happens sometimes"
            return None

        trace = prepared_pipeline.run_workflow(
            "Simulate a timeout in process_transaction",
            target="ecommerce",
            feedback=feedback,
            mode="inprocess",
        )
        assert trace.feedback_rounds == 1
        assert trace.fault.actions["trigger"] == "probabilistic"

    def test_workflow_nlp_failure_is_recorded(self, prepared_pipeline):
        trace = prepared_pipeline.run_workflow("   ", target="ecommerce", mode="inprocess")
        assert not trace.succeeded
        assert trace.stages[-1].stage == "nlp_processing"
        assert not trace.stages[-1].succeeded


class TestWorkflowTraceRecord:
    def test_stage_accumulation(self):
        trace = WorkflowTrace(description="x")
        trace.add_stage("nlp_processing", 0.5, {"entities": 3})
        trace.add_stage("code_generation", 0.25)
        assert trace.total_seconds == pytest.approx(0.75)
        assert trace.stage_seconds()["nlp_processing"] == pytest.approx(0.5)
        assert not trace.succeeded  # no fault attached

    def test_completed_stages_skip_failures(self):
        trace = WorkflowTrace(description="x")
        trace.add_stage("nlp_processing", 0.1, succeeded=False)
        assert trace.completed_stages == []


class TestRefinementSession:
    def test_running_example_two_iterations(self, prepared_pipeline, ecommerce_target, running_example_text):
        session = RefinementSession(
            prepared_pipeline, running_example_text, code=ecommerce_target.build_source()
        )
        first = session.propose()
        assert first.decisions.template == "timeout"
        assert first.decisions.handling == "unhandled"
        second = session.give_feedback("introduce a retry mechanism instead of just logging the error")
        assert second.decisions.handling == "retry"
        assert "retry" in second.fault.code.lower()
        assert session.iterations == 2
        history = session.history()
        assert history[0]["critique"] is not None
        assert not session.accepted

    def test_propose_is_idempotent(self, prepared_pipeline, sample_module, running_example_text):
        session = RefinementSession(prepared_pipeline, running_example_text, code=sample_module)
        assert session.propose() is session.propose()

    def test_feedback_before_propose_raises(self, prepared_pipeline, sample_module, running_example_text):
        session = RefinementSession(prepared_pipeline, running_example_text, code=sample_module)
        with pytest.raises(FeedbackError):
            session.give_feedback("anything")

    def test_accept_marks_session_accepted(self, prepared_pipeline, sample_module, running_example_text):
        session = RefinementSession(prepared_pipeline, running_example_text, code=sample_module)
        candidate = session.propose()
        assert session.accept() is candidate
        assert session.accepted

    def test_auto_refine_with_retry_tester_converges(self, prepared_pipeline, sample_module, running_example_text):
        tester = SimulatedTester(profile=PreferenceProfile(name="retry", preferred_handling=HandlingStyle.RETRY))
        session = RefinementSession(prepared_pipeline, running_example_text, code=sample_module)
        final = session.auto_refine(tester, max_iterations=4)
        assert final.decisions.handling == "retry"
        assert session.accepted
