"""The engine façade: lifecycle, solo-parity determinism, cache persistence,
and the batched NLP extraction stage."""

from __future__ import annotations

import json
import threading

import pytest

from repro import (
    FaultInjectionEngine,
    GenerateRequest,
    NeuralFaultInjector,
    PipelineConfig,
)
from repro.api import DatasetRequest, GeneratePayload, RLHFRequest
from repro.config import RLHFConfig
from repro.errors import EngineClosedError, RequestError
from repro.nlp import FaultSpecExtractor
from repro.targets import get_target
from repro.types import FaultDescription

DESCRIPTIONS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Silently corrupt the amount returned by the transfer function",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Raise an unexpected exception in deposit when the amount is small",
    "Introduce a delay into apply_interest that slows every statement run",
]

#: Descriptions grounded in the kvstore target's functions.
KVSTORE_DESCRIPTIONS = [
    "Simulate a timeout in the put function causing an unhandled exception",
    "Make the get function silently swallow errors instead of raising them",
    "Silently corrupt the value returned by the get function",
]


def _expected_payload_dict(config: PipelineConfig, description: str, target: str, greedy: bool):
    """The payload a fresh, solo run through the old API produces."""
    with NeuralFaultInjector(PipelineConfig.from_dict(config.to_dict())) as legacy:
        code = get_target(target).build_source()
        spec, context = legacy.define_fault(description, code=code)
        prompt = legacy.build_prompt(spec, context)
        candidate = legacy.generate_fault(prompt, greedy=greedy)
    return GeneratePayload.from_candidate(candidate).deterministic_dict()


class TestEngineLifecycle:
    def test_context_manager_closes_engine(self):
        with FaultInjectionEngine() as engine:
            assert not engine.closed
        assert engine.closed

    def test_close_is_idempotent(self):
        engine = FaultInjectionEngine()
        engine.close()
        engine.close()
        assert engine.closed

    def test_submit_after_close_raises(self):
        engine = FaultInjectionEngine()
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(GenerateRequest(description="x"))

    def test_requests_submitted_before_close_still_resolve(self):
        engine = FaultInjectionEngine()
        handles = [
            engine.submit(GenerateRequest(description=text, target="bank"))
            for text in DESCRIPTIONS[:3]
        ]
        engine.close()
        for handle in handles:
            assert handle.result(timeout=30).ok

    def test_untyped_requests_are_rejected(self):
        with FaultInjectionEngine() as engine:
            with pytest.raises(RequestError, match="typed request"):
                engine.submit({"description": "x"})

    def test_legacy_facade_shares_the_engine_stack(self):
        with FaultInjectionEngine() as engine:
            legacy = NeuralFaultInjector(engine=engine)
            assert legacy.engine is engine
            assert legacy.generator is engine.generator
            assert legacy.extractor is engine.extractor
            assert legacy.config is engine.config


class TestSoloParityDeterminism:
    """Concurrent mixes are byte-identical to solo runs through the old API."""

    def test_concurrent_mix_matches_fresh_old_api_payloads(self):
        config = PipelineConfig()
        mix = [(text, "bank") for text in DESCRIPTIONS] + [
            (text, "kvstore") for text in KVSTORE_DESCRIPTIONS
        ]
        requests = [
            GenerateRequest(
                description=text,
                target=target,
                greedy=index % 3 != 2,
                request_id=f"mix-{index}",
            )
            for index, (text, target) in enumerate(mix)
        ]
        with FaultInjectionEngine(config) as engine:
            responses = [None] * len(requests)

            def client(start: int) -> None:
                for offset in range(start, len(requests), 2):
                    responses[offset] = engine.submit(requests[offset])

            threads = [threading.Thread(target=client, args=(start,)) for start in (0, 1)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            envelopes = [handle.result(timeout=60) for handle in responses]

        for request, envelope in zip(requests, envelopes):
            assert envelope.ok, envelope.error
            assert envelope.request_id == request.request_id
            produced = json.dumps(envelope.payload.deterministic_dict(), sort_keys=True)
            expected = json.dumps(
                _expected_payload_dict(config, request.description, request.target, request.greedy),
                sort_keys=True,
            )
            assert produced == expected, f"payload drifted for {request.request_id}"

    def test_seeded_sampling_is_invariant_to_grouping(self):
        config = PipelineConfig()
        requests = [
            GenerateRequest(
                description=text, target="bank", greedy=False, seed=1000 + index
            )
            for index, text in enumerate(DESCRIPTIONS[:4])
        ]
        with FaultInjectionEngine(config) as engine:
            grouped = engine.run_many(requests)
        solo = []
        for request in requests:
            with FaultInjectionEngine(PipelineConfig.from_dict(config.to_dict())) as fresh:
                solo.append(fresh.run(request))
        for grouped_response, solo_response in zip(grouped, solo):
            assert grouped_response.ok and solo_response.ok
            assert json.dumps(grouped_response.payload.deterministic_dict(), sort_keys=True) == json.dumps(
                solo_response.payload.deterministic_dict(), sort_keys=True
            )

    def test_executed_request_matches_old_api_outcome(self):
        config = PipelineConfig()
        request = GenerateRequest(
            description=DESCRIPTIONS[0], target="bank", execute=True, mode="subprocess"
        )
        with FaultInjectionEngine(config) as engine:
            response = engine.run(request)
        assert response.ok
        with NeuralFaultInjector(PipelineConfig.from_dict(config.to_dict())) as legacy:
            fault = legacy.inject(DESCRIPTIONS[0], code=get_target("bank").build_source())
            record = legacy.integrate_and_test(fault, "bank", mode="subprocess")
        produced = response.payload.deterministic_dict()["outcome"]
        expected = record.outcome.to_dict()
        expected.pop("duration_seconds", None)
        assert produced == expected

    def test_error_requests_resolve_with_structured_envelopes(self):
        with FaultInjectionEngine() as engine:
            # A code context with no functions fails function selection in
            # the NLP stage without disturbing the healthy request.
            broken = GenerateRequest(description="make it fail somehow", code="x = 1\n")
            healthy = GenerateRequest(description=DESCRIPTIONS[0], target="bank")
            responses = engine.run_many([broken, healthy])
        assert not responses[0].ok
        assert responses[0].error.type == "CodeAnalysisError"
        assert responses[0].payload is None
        assert responses[1].ok


class TestHeavyweightRequests:
    def test_dataset_request_produces_records_and_updates_engine_state(self, tmp_path):
        with FaultInjectionEngine() as engine:
            response = engine.run(DatasetRequest(targets=("bank",), samples_per_target=4))
            assert response.ok
            assert response.payload.records == 4
            assert engine.dataset is not None and len(engine.dataset) == 4
            streamed = engine.run(
                DatasetRequest(
                    targets=("bank",), samples_per_target=4, jsonl_path=str(tmp_path / "d.jsonl")
                )
            )
            assert streamed.ok
            assert streamed.payload.jsonl_path.endswith("d.jsonl")
            assert (tmp_path / "d.jsonl").exists()

    def test_rlhf_request_runs_the_loop(self):
        config = PipelineConfig(rlhf=RLHFConfig(iterations=1, candidates_per_iteration=2))
        with FaultInjectionEngine(config) as engine:
            response = engine.run(
                RLHFRequest(descriptions=(DESCRIPTIONS[0],), iterations=1)
            )
        assert response.ok
        assert response.payload.prompts == 1
        assert len(response.payload.report["iterations"]) == 1


class TestCachePersistence:
    def test_save_and_load_round_trip_warms_a_fresh_engine(self, tmp_path):
        path = tmp_path / "caches.pkl"
        config = PipelineConfig()
        with FaultInjectionEngine(config) as engine:
            engine.run_many(
                [GenerateRequest(description=text, target="bank") for text in DESCRIPTIONS[:3]]
            )
            counts = engine.save_caches(path)
        assert counts["extract"] > 0 and counts["encoder"] > 0 and counts["render"] > 0

        with FaultInjectionEngine(PipelineConfig.from_dict(config.to_dict())) as warmed:
            installed = warmed.load_caches(path)
            assert installed["extract"] == counts["extract"]
            assert installed["encoder"] == counts["encoder"]
            assert installed["render"] == counts["render"]
            warmed.run_many(
                [GenerateRequest(description=text, target="bank") for text in DESCRIPTIONS[:3]]
            )
            assert warmed.extractor.cache_info()["hits"] >= 3
            assert warmed.generator.encoder.cache_info()["hits"] >= 3
            assert warmed.generator.grammar.cache_info()["hits"] >= 3

    def test_loaded_results_match_unwarmed_results(self, tmp_path):
        path = tmp_path / "caches.pkl"
        config = PipelineConfig()
        request = GenerateRequest(description=DESCRIPTIONS[1], target="bank")
        with FaultInjectionEngine(config) as engine:
            cold = engine.run(request)
            engine.save_caches(path)
        with FaultInjectionEngine(PipelineConfig.from_dict(config.to_dict())) as warmed:
            warmed.load_caches(path)
            warm = warmed.run(request)
        assert json.dumps(cold.payload.deterministic_dict(), sort_keys=True) == json.dumps(
            warm.payload.deterministic_dict(), sort_keys=True
        )

    def test_unsupported_cache_version_is_rejected(self, tmp_path):
        import pickle

        from repro.errors import ReproError

        path = tmp_path / "bad.pkl"
        path.write_bytes(pickle.dumps({"version": 99}))
        with FaultInjectionEngine() as engine:
            with pytest.raises(ReproError, match="unsupported cache file version"):
                engine.load_caches(path)


class TestBatchedExtraction:
    def test_extract_batch_matches_per_description_extraction(self):
        cached = FaultSpecExtractor(cache_size=64)
        uncached = FaultSpecExtractor(cache_size=0)
        descriptions = [FaultDescription(text=text) for text in DESCRIPTIONS]
        batch = cached.extract_batch(descriptions)
        solo = [uncached.extract(description) for description in descriptions]
        assert [spec.to_dict() for spec in batch] == [spec.to_dict() for spec in solo]

    def test_repeated_descriptions_hit_the_cache(self):
        extractor = FaultSpecExtractor(cache_size=64)
        descriptions = [FaultDescription(text=DESCRIPTIONS[0]) for _ in range(5)]
        extractor.extract_batch(descriptions)
        info = extractor.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4

    def test_cache_hits_return_independent_copies(self):
        extractor = FaultSpecExtractor(cache_size=64)
        description = FaultDescription(text=DESCRIPTIONS[0])
        first = extractor.extract(description)
        first.parameters["mutated"] = True
        first.entities.clear()
        second = extractor.extract(description)
        assert "mutated" not in second.parameters
        assert second.entities or second.to_dict() != {}
        assert second.parameters is not first.parameters

    def test_misaligned_contexts_are_rejected(self):
        from repro.errors import SpecificationError

        extractor = FaultSpecExtractor()
        with pytest.raises(SpecificationError, match="align"):
            extractor.extract_batch([FaultDescription(text="x")], contexts=[None, None])

    def test_zero_cache_size_disables_caching(self):
        extractor = FaultSpecExtractor(cache_size=0)
        description = FaultDescription(text=DESCRIPTIONS[0])
        extractor.extract(description)
        extractor.extract(description)
        assert extractor.cache_info()["size"] == 0
        assert extractor.cache_info()["hits"] == 0
