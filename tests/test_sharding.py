"""Sharded serving: the hash ring, routing rule, and the live multi-shard server.

The ring tests pin the routing invariants the serving design leans on — a
target routes to the same shard across ring instances (restarts), and the
builtin targets spread across shards at the common shard counts.  The live
tests drive a real 2-shard :class:`FaultInjectionServer` through
``http.client``: the router proxies bytes verbatim, heavy traffic on one
shard does not delay the other, and dead shard workers are respawned with
monotonic aggregate counters.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultInjectionServer, PipelineConfig, ServerConfig
from repro.api import FaultInjectionEngine, GenerateRequest
from repro.config import EngineConfig, ExecutionConfig
from repro.errors import ConfigurationError, ReproError
from repro.server import HashRing, routing_key
from repro.server.sharding import RING_REPLICAS, RING_SALT

DESCRIPTION = "Simulate a timeout in the transfer function causing an unhandled exception"
DELAY_DESCRIPTION = "Introduce a delay into the get function that slows every lookup"

#: The builtin targets' pinned shard assignment.  These constants are part of
#: the upgrade contract: remapping them (by changing RING_REPLICAS/RING_SALT)
#: would cold-start every per-target cache in the fleet after a deploy.
SPREAD_AT_2 = {"ecommerce": 0, "kvstore": 0, "bank": 1, "queue": 1}
SPREAD_AT_4 = {"ecommerce": 3, "kvstore": 0, "bank": 2, "queue": 1}


class TestHashRing:
    def test_route_is_stable_across_instances(self):
        """Two rings with the same shard count agree on every key — the
        property that keeps per-target state hot across server restarts."""
        first, second = HashRing(4), HashRing(4)
        keys = [f"target-{i}" for i in range(200)]
        assert [first.route(k) for k in keys] == [second.route(k) for k in keys]

    @settings(max_examples=200, deadline=None)
    @given(st.text(min_size=1, max_size=64), st.integers(min_value=1, max_value=8))
    def test_route_property(self, key, shards):
        """Any key routes to a valid shard, deterministically across rings."""
        route = HashRing(shards).route(key)
        assert 0 <= route < shards
        assert HashRing(shards).route(key) == route

    def test_builtin_targets_spread_at_two_shards(self):
        ring = HashRing(2)
        assert {t: ring.route(t) for t in SPREAD_AT_2} == SPREAD_AT_2

    def test_builtin_targets_spread_at_four_shards(self):
        ring = HashRing(4)
        assert {t: ring.route(t) for t in SPREAD_AT_4} == SPREAD_AT_4

    def test_builtin_targets_cover_every_shard_at_three(self):
        ring = HashRing(3)
        assert {ring.route(t) for t in SPREAD_AT_2} == {0, 1, 2}

    def test_single_shard_routes_everything_to_zero(self):
        ring = HashRing(1)
        assert {ring.route(f"k{i}") for i in range(50)} == {0}

    def test_ring_constants_are_pinned(self):
        assert (RING_REPLICAS, RING_SALT) == (64, "repro-shard-68")

    def test_invalid_ring_is_rejected(self):
        with pytest.raises(ReproError, match="at least one shard"):
            HashRing(0)
        with pytest.raises(ReproError, match="replica"):
            HashRing(2, replicas=0)


class TestRoutingKey:
    def test_target_wins(self):
        assert routing_key("generate", {"target": "bank", "description": "x"}) == "bank"

    def test_first_dataset_target_is_the_key(self):
        assert routing_key("dataset", {"targets": ["kvstore", "bank"]}) == "kvstore"

    def test_description_is_the_fallback(self):
        assert routing_key("generate", {"description": DESCRIPTION}) == DESCRIPTION

    def test_first_description_of_many(self):
        assert routing_key("rlhf", {"descriptions": ["a", "b"]}) == "a"

    def test_kind_is_the_last_resort(self):
        assert routing_key("generate", {}) == "generate"
        assert routing_key("campaign", "not-a-mapping") == "campaign"

    def test_empty_target_falls_through(self):
        assert routing_key("generate", {"target": "", "description": "d"}) == "d"


@pytest.fixture(scope="module")
def pipeline_config():
    return PipelineConfig(
        execution=ExecutionConfig(max_workers=1),
        engine=EngineConfig(max_queue_delay_seconds=0.0),
    )


@pytest.fixture(scope="module")
def sharded(pipeline_config):
    """One live 2-shard server shared by the socket tests.

    At two shards the builtin targets split kvstore/ecommerce → shard 0 and
    bank/queue → shard 1 (pinned above), which the routing and isolation
    tests below rely on.
    """
    with FaultInjectionServer(
        config=pipeline_config,
        server_config=ServerConfig(port=0, shards=2, request_retention=8),
    ) as live:
        yield live


def _exchange(server, method: str, path: str, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=120)
    try:
        payload = json.dumps(body).encode() if isinstance(body, dict) else body
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _poll(server, path, deadline_seconds=60):
    deadline = time.monotonic() + deadline_seconds
    while True:
        status, body = _exchange(server, "GET", path)
        if status == 200:
            return body
        assert status == 202, body
        assert time.monotonic() < deadline, "async ticket never resolved"
        time.sleep(0.02)


class TestShardedServer:
    def test_borrowed_engine_cannot_be_sharded(self, pipeline_config):
        engine = FaultInjectionEngine(pipeline_config)
        try:
            with pytest.raises(ConfigurationError, match="borrowed engine"):
                FaultInjectionServer(
                    engine=engine, server_config=ServerConfig(port=0, shards=2)
                )
        finally:
            engine.close()

    def test_healthz_multi_shard_shape(self, sharded):
        """Pin the sharded /healthz contract: the single-engine keys plus the
        shard topology, with gauges aggregated across the fleet."""
        status, body = _exchange(sharded, "GET", "/healthz")
        assert status == 200
        assert set(body) == {
            "status",
            "schema_version",
            "queue_depth",
            "draining",
            "open_breakers",
            "shards",
            "degraded_shards",
        }
        assert body["status"] == "ok"
        assert body["shards"] == 2
        assert body["degraded_shards"] == 0
        assert body["open_breakers"] == 0

    def test_sync_generate_matches_single_engine(self, sharded, pipeline_config):
        """The routed envelope's payload is byte-equal to what one engine
        produces for the same request — the router adds nothing."""
        status, envelope = _exchange(
            sharded, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "bank"}
        )
        assert status == 200
        assert envelope["status"] == "ok"
        engine = FaultInjectionEngine(pipeline_config)
        try:
            direct = engine.run(
                GenerateRequest(description=DESCRIPTION, target="bank")
            ).to_dict()
        finally:
            engine.close()
        for key in ("fault", "strategy", "logprob", "outcome"):
            assert envelope["payload"][key] == direct["payload"][key]

    def test_async_submit_and_poll_with_client_id(self, sharded):
        status, ticket = _exchange(
            sharded,
            "POST",
            "/v1/generate?async=1",
            {"description": DESCRIPTION, "target": "bank", "request_id": "shard-async-1"},
        )
        assert status == 202
        assert ticket["request_id"] == "shard-async-1"
        envelope = _poll(sharded, ticket["poll"])
        assert envelope["status"] == "ok"
        assert envelope["request_id"] == "shard-async-1"

    def test_async_submit_mints_router_ids(self, sharded):
        """Engine-assigned ids are only unique per shard, so the router mints
        ``req-rNNNNNN`` ids for submissions that did not bring one."""
        status, ticket = _exchange(
            sharded,
            "POST",
            "/v1/generate?async=1",
            {"description": DESCRIPTION, "target": "kvstore"},
        )
        assert status == 202
        assert ticket["request_id"].startswith("req-r")
        envelope = _poll(sharded, ticket["poll"])
        assert envelope["request_id"] == ticket["request_id"]

    def test_polling_an_unknown_id_maps_to_404(self, sharded):
        status, body = _exchange(sharded, "GET", "/v1/requests/never-anywhere")
        assert status == 404
        assert body["error"]["type"] == "RequestError"

    def test_bad_request_still_maps_to_400(self, sharded):
        status, body = _exchange(
            sharded, "POST", "/v1/generate", {"description": DESCRIPTION, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_stats_carries_shards_and_monotonic_aggregate(self, sharded):
        status, stats = _exchange(sharded, "GET", "/v1/stats")
        assert status == 200
        assert set(stats) == {"schema_version", "server", "shards", "aggregate"}
        assert stats["schema_version"] == "1.0"
        assert len(stats["shards"]) == 2
        assert [shard["index"] for shard in stats["shards"]] == [0, 1]
        for shard in stats["shards"]:
            assert shard["alive"] is True
            assert shard["stats"]["schema_version"] == "1.0"
        aggregate = stats["aggregate"]
        assert aggregate["shards"] == 2
        assert aggregate["degraded_shards"] == 0
        assert aggregate["requests_total"] == sum(
            shard["stats"]["server"]["requests_total"] for shard in stats["shards"]
        )

    def test_same_target_lands_on_the_same_shard(self, sharded):
        """Two bank requests both advance shard 1's counters; shard 0 only
        sees the stats polls themselves (restart-stable routing, live)."""
        _, before = _exchange(sharded, "GET", "/v1/stats")
        for _ in range(2):
            status, _ = _exchange(
                sharded, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "bank"}
            )
            assert status == 200
        _, after = _exchange(sharded, "GET", "/v1/stats")
        deltas = [
            after["shards"][i]["stats"]["server"]["requests_total"]
            - before["shards"][i]["stats"]["server"]["requests_total"]
            for i in range(2)
        ]
        # Each /v1/stats fan-out adds one request per shard; the generates
        # add two more, all on bank's shard (index 1 at two shards).
        assert deltas[1] - deltas[0] == 2

    def test_burst_on_one_shard_does_not_delay_the_other(self, sharded):
        """Queue several execution-heavy requests for kvstore (shard 0), then
        serve a bank generate (shard 1): it completes while shard 0 is still
        backed up, and shard 1's queue never sees the burst."""
        tickets = []
        for index in range(4):
            status, ticket = _exchange(
                sharded,
                "POST",
                "/v1/generate?async=1",
                {
                    "description": DELAY_DESCRIPTION,
                    "target": "kvstore",
                    "execute": True,
                    "mode": "inprocess",
                    "request_id": f"burst-kv-{index}",
                },
            )
            assert status == 202
            tickets.append(ticket["poll"])
        started = time.monotonic()
        status, envelope = _exchange(
            sharded, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "bank"}
        )
        elapsed = time.monotonic() - started
        assert status == 200 and envelope["status"] == "ok"
        _, stats = _exchange(sharded, "GET", "/v1/stats")
        depths = {
            shard["index"]: shard["queue_depth"] for shard in stats["shards"]
        }
        # The burst serializes on shard 0 (~0.4s each, one worker); the bank
        # request never waits behind it.
        assert depths[1] == 0
        assert elapsed < 5.0
        for poll in tickets:  # leave the fixture quiescent for later tests
            assert _poll(sharded, poll)["status"] == "ok"

    def test_dead_shard_is_respawned_with_monotonic_counters(self, sharded):
        """Kill one shard worker: the supervisor respawns it, the respawn is
        counted like ``pool_rebuilds``, and aggregate counters never move
        backwards even though the fresh worker restarts its own at zero."""
        _, before = _exchange(sharded, "GET", "/v1/stats")
        slot = sharded._shards._slots[0]
        slot.process.kill()
        deadline = time.monotonic() + 30
        while True:
            _, stats = _exchange(sharded, "GET", "/v1/stats")
            aggregate = stats["aggregate"]
            if aggregate["shard_respawns"] >= 1 and aggregate["degraded_shards"] == 0:
                break
            assert time.monotonic() < deadline, "shard was never respawned"
            time.sleep(0.1)
        assert aggregate["requests_total"] >= before["aggregate"]["requests_total"]
        status, body = _exchange(sharded, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        # The respawned worker serves its targets again.
        status, envelope = _exchange(
            sharded, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "kvstore"}
        )
        assert status == 200 and envelope["status"] == "ok"


class TestShardedDrain:
    def test_close_drains_every_worker(self, pipeline_config):
        server = FaultInjectionServer(
            config=pipeline_config, server_config=ServerConfig(port=0, shards=2)
        ).start()
        processes = [slot.process for slot in server._shards._slots]
        server.close()
        assert all(process.poll() is not None for process in processes)
        with pytest.raises(OSError):
            _exchange(server, "GET", "/healthz")

    def test_close_is_idempotent(self, pipeline_config):
        server = FaultInjectionServer(
            config=pipeline_config, server_config=ServerConfig(port=0, shards=2)
        ).start()
        server.close()
        server.close()
