"""Differential chaos suite: faults in the execution plane never change results.

Each test runs the same workload twice — once fault-free, once with the
self-chaos harness crashing workers, stalling tasks, and dropping results —
and asserts the *deterministic* payloads are byte-identical.  Chaos decisions
are seeded hashes that only fire on a task's first attempt, so supervision
(requeue-on-death, bounded retries) always converges on the clean result;
these tests are what make that guarantee enforceable.
"""

from __future__ import annotations

import json

import pytest

from repro import PipelineConfig
from repro.api import FaultInjectionEngine, GenerateRequest
from repro.config import (
    ChaosConfig,
    DistributedConfig,
    EngineConfig,
    ExecutionConfig,
    ResilienceConfig,
)
from repro.distributed import DistributedPool
from repro.execution import WorkerPool
from repro.targets import get_target

DESCRIPTIONS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Inject a delay before the deposit commits so concurrent audits observe stale state",
    "Corrupt the withdrawal amount so the balance check raises an assertion",
    "Drop the connection while the statement export is streaming",
]

#: Aggressive enough that every fault kind fires within a small batch,
#: deterministic via the seeded hash.
CHAOS = ChaosConfig(
    enabled=True,
    seed=31,
    worker_crash_probability=0.3,
    task_delay_probability=0.3,
    task_delay_seconds=0.02,
    drop_result_probability=0.3,
)


def _stable(payload: dict) -> dict:
    """A pool payload with the wall-clock measurement stripped."""
    result = {k: v for k, v in payload.items() if k != "result"}
    result["result"] = {
        k: v for k, v in payload.get("result", {}).items() if k != "duration_seconds"
    }
    return result


def _deterministic_wire(response) -> str:
    """The canonical deterministic bytes of one generate envelope.

    ``deterministic_dict`` already excludes measured durations; delay-fault
    outcomes additionally embed wall-clock readings in their detection
    ``reason`` ("run took 0.41s versus ..."), which differs between ANY two
    runs — fault-free ones included — so it is scrubbed here too.
    """
    data = response.payload.deterministic_dict()
    outcome = data.get("outcome")
    if outcome and isinstance(outcome.get("details"), dict):
        outcome["details"].pop("reason", None)
    return json.dumps(data, sort_keys=True)


@pytest.mark.pool
class TestPoolChaosDifferential:
    def test_chaotic_batches_match_fault_free_batches(self):
        bank = get_target("bank").build_source()
        sources = [bank] * 6
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0) as pool:
            baseline = pool.run_batch("bank", sources, seed=3, iterations=10)
        resilience = ResilienceConfig(chaos=CHAOS)
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0, resilience=resilience) as pool:
            chaotic = pool.run_batch("bank", sources, seed=3, iterations=10)
            stats = pool.stats()
        assert [p["status"] for p in baseline] == ["ok"] * 6
        assert [_stable(p) for p in chaotic] == [_stable(p) for p in baseline]
        # the run was actually disrupted, not a no-op
        assert stats["retries"] > 0

    def test_chaos_decisions_repeat_across_runs(self):
        bank = get_target("bank").build_source()
        resilience = ResilienceConfig(chaos=CHAOS)
        runs = []
        for _ in range(2):
            with WorkerPool(max_workers=2, task_timeout_seconds=5.0, resilience=resilience) as pool:
                payloads = pool.run_batch("bank", [bank] * 4, seed=7, iterations=10)
                runs.append(([_stable(p) for p in payloads], pool.stats()["retries"]))
        assert runs[0] == runs[1]


@pytest.mark.pool
class TestDistributedChaosDifferential:
    """The network-plane generalization: chaos kills *remote* workers.

    Chaos travels inside lease task payloads and is acted out at the worker
    process boundary — a scheduled crash SIGKILLs the whole remote worker,
    which the coordinator observes as an abrupt connection loss, exactly like
    a machine death.  The differential claim is the ISSUE's headline: a
    distributed campaign over 3 localhost workers, with at least one worker
    killed mid-run, is byte-identical to single-process pooled execution.
    """

    def _distributed_pool(self, resilience: ResilienceConfig | None) -> DistributedPool:
        return DistributedPool(
            max_workers=3,
            task_timeout_seconds=5.0,
            resilience=resilience,
            distributed=DistributedConfig(workers=3),
        )

    def test_chaotic_distributed_matches_fault_free_pool(self):
        bank = get_target("bank").build_source()
        sources = [bank] * 6
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0) as pool:
            baseline = pool.run_batch("bank", sources, seed=7, iterations=10)
        with self._distributed_pool(ResilienceConfig(chaos=CHAOS)) as pool:
            chaotic = pool.run_batch("bank", sources, seed=7, iterations=10)
            stats = pool.stats()
        assert [p["status"] for p in baseline] == ["ok"] * 6
        assert [_stable(p) for p in chaotic] == [_stable(p) for p in baseline]
        # at least one remote worker was killed mid-run and its lease requeued
        assert stats["requeues"] > 0
        assert stats["retries"] > 0
        assert stats["pool_rebuilds"] > 0  # the fleet respawned the victim

    def test_distributed_chaos_decisions_repeat_across_runs(self):
        bank = get_target("bank").build_source()
        runs = []
        for _ in range(2):
            with self._distributed_pool(ResilienceConfig(chaos=CHAOS)) as pool:
                payloads = pool.run_batch("bank", [bank] * 4, seed=7, iterations=10)
                runs.append(([_stable(p) for p in payloads], pool.stats()["retries"]))
        assert runs[0] == runs[1]


@pytest.mark.pool
class TestEngineChaosDifferential:
    def _engine(self, chaos: ChaosConfig | None) -> FaultInjectionEngine:
        resilience = ResilienceConfig(chaos=chaos) if chaos is not None else ResilienceConfig()
        # A real coalescing window so all four requests always form ONE
        # model/pool batch — deterministic grouping means deterministic
        # chaos keys, making the differential run exactly repeatable.
        return FaultInjectionEngine(
            PipelineConfig(
                execution=ExecutionConfig(max_workers=2),
                engine=EngineConfig(max_queue_delay_seconds=0.1),
                resilience=resilience,
            )
        )

    def test_served_results_are_byte_identical_under_chaos(self):
        requests = [
            GenerateRequest(description=text, target="bank", execute=True, mode="pool")
            for text in DESCRIPTIONS
        ]
        with self._engine(None) as engine:
            baseline = engine.run_many(requests)
        with self._engine(CHAOS) as engine:
            chaotic = engine.run_many(requests)
            stats = engine.execution_stats()
        assert all(r.ok for r in baseline)
        assert all(r.ok for r in chaotic)
        base_wire = [_deterministic_wire(r) for r in baseline]
        chaos_wire = [_deterministic_wire(r) for r in chaotic]
        assert chaos_wire == base_wire
        # supervision visibly intervened during the chaotic run
        assert stats["totals"]["retries"] + stats["totals"]["pool_rebuilds"] > 0

    def test_served_distributed_results_are_byte_identical_under_chaos(self):
        requests = [
            GenerateRequest(description=text, target="bank", execute=True, mode="distributed")
            for text in DESCRIPTIONS
        ]
        with self._engine(None) as engine:
            baseline = engine.run_many(requests)
        with self._engine(CHAOS) as engine:
            chaotic = engine.run_many(requests)
            stats = engine.execution_stats()
        assert all(r.ok for r in baseline)
        assert all(r.ok for r in chaotic)
        base_wire = [_deterministic_wire(r) for r in baseline]
        chaos_wire = [_deterministic_wire(r) for r in chaotic]
        assert chaos_wire == base_wire
        # the distributed plane visibly intervened and reported it
        assert stats["distributed"]["leases"] > 0
        assert stats["totals"]["retries"] > 0
