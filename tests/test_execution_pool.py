"""Tests for the campaign execution engine: worker pools, batching, caching.

Pool tests use one or two workers and short timeouts so the whole module stays
inside the fast tier-1 budget.
"""

from __future__ import annotations

import pytest

from repro.config import ExecutionConfig, IntegrationConfig, PipelineConfig
from repro.errors import ConfigurationError
from repro.execution import WorkerPool, resolve_workers, worker_cap
from repro.execution.cache import HashKeyedCache, cache_stats
from repro.injection import FaultLoad, ProgrammableInjector, ast_utils
from repro.injection.ast_utils import PARSE_CACHE
from repro.integration import ExperimentRunner, SandboxRunner
from repro.nlp.code_analyzer import ANALYSIS_CACHE
from repro.targets import get_target

#: Sleeps far longer than any configured timeout once the workload starts.
HANG_ON_LOAD = "import time\ntime.sleep(60)\n"
#: Kills the hosting process outright while the module loads.
EXIT_ON_LOAD = "import os\nos._exit(7)\n"
#: Exits cleanly before the driver can emit its JSON payload.
SILENT_EXIT_ON_LOAD = "import os\nos._exit(0)\n"


@pytest.fixture()
def bank_source() -> str:
    return get_target("bank").build_source()


@pytest.fixture()
def runner() -> SandboxRunner:
    sandbox = SandboxRunner(
        IntegrationConfig(test_timeout_seconds=2.0),
        execution=ExecutionConfig(max_workers=2),
    )
    yield sandbox
    sandbox.close()


class TestExecutionConfig:
    def test_defaults_round_trip_through_pipeline_config(self):
        config = PipelineConfig()
        assert config.execution.default_mode == "inprocess"
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.execution.to_dict() == config.execution.to_dict()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(max_workers=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(default_mode="teleport")

    def test_worker_counts_are_capped_by_cpu_count(self):
        assert worker_cap() >= 1
        assert resolve_workers(10_000) == worker_cap()
        assert resolve_workers(1) == 1
        assert ExecutionConfig(max_workers=10_000).resolved_workers() == worker_cap()


@pytest.mark.pool
class TestWorkerPool:
    def test_batch_preserves_submission_order(self, bank_source):
        kv_source = get_target("kvstore").build_source()
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0) as pool:
            payloads = pool.run_batch("bank", [bank_source] * 4, seed=3, iterations=10)
            assert [p["status"] for p in payloads] == ["ok"] * 4
            assert all(p["result"]["target"] == "bank" for p in payloads)
            kv = pool.run_batch("kvstore", [kv_source], seed=3, iterations=10)
            assert kv[0]["result"]["target"] == "kvstore"
            assert pool.tasks_executed == 5

    def test_results_are_seed_stable_across_batches(self, bank_source):
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0) as pool:
            first = pool.run_batch("bank", [bank_source] * 3, seed=11, iterations=10)
            second = pool.run_batch("bank", [bank_source] * 3, seed=11, iterations=10)
        stable = lambda payload: {k: v for k, v in payload["result"].items() if k != "duration_seconds"}
        assert [stable(p) for p in first] == [stable(p) for p in second]

    def test_hung_task_times_out_without_poisoning_the_batch(self, bank_source):
        with WorkerPool(max_workers=2, task_timeout_seconds=1.0) as pool:
            payloads = pool.run_batch(
                "bank", [bank_source, bank_source + HANG_ON_LOAD, bank_source], iterations=10
            )
        assert [p["status"] for p in payloads] == ["ok", "timeout", "ok"]

    def test_worker_death_is_isolated_and_pool_recovers(self, bank_source):
        with WorkerPool(max_workers=1, task_timeout_seconds=5.0) as pool:
            payloads = pool.run_batch(
                "bank", [bank_source, bank_source + EXIT_ON_LOAD, bank_source], iterations=10
            )
            assert payloads[1]["status"] == "error"
            assert payloads[0]["status"] == "ok"
            assert payloads[2]["status"] == "ok"
            # the pool must still serve work after rebuilding
            again = pool.run_batch("bank", [bank_source], iterations=10)
            assert again[0]["status"] == "ok"


@pytest.mark.pool
class TestSandboxRunnerBatches:
    def test_pool_mode_matches_inprocess_results(self, runner, bank_source):
        inproc = runner.run_batch("bank", [bank_source] * 3, seed=5, mode="inprocess")
        pooled = runner.run_batch("bank", [bank_source] * 3, seed=5, mode="pool")
        for a, b in zip(inproc, pooled):
            assert a.completed and b.completed
            assert a.result.metrics == b.result.metrics
            assert a.result.detected_errors == b.result.detected_errors

    def test_single_run_supports_pool_mode(self, runner, bank_source):
        observation = runner.run("bank", bank_source, mode="pool")
        assert observation.completed

    def test_unknown_mode_rejected_for_batches(self, runner, bank_source):
        from repro.errors import SandboxError

        with pytest.raises(SandboxError):
            runner.run_batch("bank", [bank_source], mode="teleport")

    def test_empty_batch_is_a_no_op(self, runner):
        assert runner.run_batch("bank", [], mode="pool") == []


@pytest.mark.pool
class TestPoolStatsAcrossRebuilds:
    def test_counters_accumulate_across_max_workers_rebuilds(self, runner, bank_source):
        assert runner.pool_stats() is None
        runner.run_batch("bank", [bank_source], mode="pool", max_workers=1, iterations=5)
        first = runner.pool_stats()
        assert first["tasks_executed"] == 1
        # a per-call max_workers override replaces the pool; the counters it
        # accumulated must survive the rebuild so /v1/stats stays monotonic
        runner.run_batch("bank", [bank_source] * 2, mode="pool", max_workers=2, iterations=5)
        second = runner.pool_stats()
        assert second["tasks_executed"] == 3
        assert second["pool_rebuilds"] == first["pool_rebuilds"] + 1


class TestSandboxRunnerObservationBranches:
    def test_subprocess_timeout_sets_timed_out(self, runner, bank_source):
        observation = runner.run("bank", bank_source + HANG_ON_LOAD, mode="subprocess")
        assert observation.timed_out
        assert observation.result is None
        assert not observation.completed

    def test_subprocess_nonzero_exit_reports_harness_error(self, runner, bank_source):
        observation = runner.run("bank", bank_source + EXIT_ON_LOAD, mode="subprocess")
        assert observation.result is None
        assert not observation.timed_out
        assert "exited with status 7" in observation.harness_error

    def test_subprocess_unparseable_stdout_reports_harness_error(self, runner, bank_source):
        observation = runner.run("bank", bank_source + SILENT_EXIT_ON_LOAD, mode="subprocess")
        assert observation.result is None
        assert "could not parse workload output" in observation.harness_error

    @pytest.mark.pool
    def test_pool_timeout_sets_timed_out(self, runner, bank_source):
        observation = runner.run("bank", bank_source + HANG_ON_LOAD, mode="pool")
        assert observation.timed_out
        assert observation.result is None

    def test_scratch_directory_is_reused_and_left_clean(self, runner, bank_source):
        from pathlib import Path

        first = runner._scratch_file()
        second = runner._scratch_file()
        assert first.parent == second.parent
        assert first.name != second.name
        for _ in range(3):
            assert runner.run("bank", bank_source, mode="subprocess").completed
        scratch = Path(runner._scratch.name)
        assert list(scratch.glob("module_under_test_*.py")) == []


@pytest.mark.pool
class TestExperimentRunnerRunMany:
    @pytest.fixture()
    def faults(self, bank_source):
        load = (
            FaultLoad(name="mini")
            .add("negate_condition", "*", max_points=2)
            .add("wrong_return_value", "*", max_points=2)
        )
        return ProgrammableInjector().inject(bank_source, load)

    @staticmethod
    def _keys(batch):
        return [
            (o.fault_id, o.activated, o.failure_mode.value, o.tests_failed, o.details["reason"])
            for o in batch.outcomes
        ]

    def test_run_many_matches_serial_execution(self, faults):
        config = IntegrationConfig(test_timeout_seconds=5.0)
        serial = ExperimentRunner("bank", config=config)
        expected = [serial.run_applied(fault, mode="inprocess").outcome for fault in faults]
        expected_keys = [
            (o.fault_id, o.activated, o.failure_mode.value, o.tests_failed, o.details["reason"])
            for o in expected
        ]
        batched = ExperimentRunner(
            "bank", config=config, execution=ExecutionConfig(max_workers=2)
        )
        batch = batched.run_many(faults, mode="pool")
        assert self._keys(batch) == expected_keys

    def test_run_many_records_integration_failures_in_order(self, faults, bank_source):
        from dataclasses import replace

        broken = replace(faults[1], patch=replace(faults[1].patch, original="def other():\n    pass\n"))
        mixed = [faults[0], broken, faults[2]]
        runner = ExperimentRunner("bank", execution=ExecutionConfig(max_workers=2))
        batch = runner.run_many(mixed, mode="inprocess")
        assert len(batch) == 3
        assert batch.records[1].outcome.details.get("integration_failed")
        assert batch.records[0].outcome.fault_id == faults[0].operator + "@" + faults[0].point.qualified_function + ":" + str(faults[0].point.lineno)


class TestAnalysisCaches:
    def test_parse_cache_shares_trees_for_readonly_callers(self):
        source = "def cached_probe_fn(x):\n    return x + 1\n"
        PARSE_CACHE.clear()
        first = ast_utils.parse_module(source, mutable=False)
        second = ast_utils.parse_module(source, mutable=False)
        assert first is second
        assert PARSE_CACHE.stats.misses == 1
        assert PARSE_CACHE.stats.hits == 1

    def test_mutable_parses_never_alias_the_cache(self):
        source = "def mutable_probe_fn(x):\n    return x * 2\n"
        shared = ast_utils.parse_module(source, mutable=False)
        private = ast_utils.parse_module(source)
        assert private is not shared
        private.body.clear()
        assert ast_utils.parse_module(source, mutable=False).body  # cache unharmed

    def test_define_fault_parses_each_source_once(self):
        from repro import NeuralFaultInjector

        pipeline = NeuralFaultInjector()
        source = (
            "def process_payment(amount):\n"
            "    if amount <= 0:\n"
            "        raise ValueError('bad amount')\n"
            "    return {'charged': amount}\n"
        )
        PARSE_CACHE.clear()
        ANALYSIS_CACHE.clear()
        for _ in range(5):
            spec, context = pipeline.define_fault(
                "Simulate a timeout in process_payment causing an exception", code=source
            )
            assert context is not None
            assert context.selected_function == "process_payment"
        assert ANALYSIS_CACHE.stats.misses == 1
        assert ANALYSIS_CACHE.stats.hits == 4
        assert PARSE_CACHE.stats.misses == 1  # the one real parse behind the analysis

    def test_analysis_cache_returns_fresh_contexts(self, analyzer):
        source = "def fresh_ctx_probe():\n    return 1\n"
        first = analyzer.analyze(source)
        first.selected_function = "fresh_ctx_probe"
        second = analyzer.analyze(source)
        assert second.selected_function is None
        assert second is not first

    def test_build_source_is_memoized_per_target(self):
        target = get_target("bank")
        assert target.build_source() is target.build_source()

    def test_cache_stats_are_exposed(self):
        stats = cache_stats()
        assert "ast-parse" in stats
        assert "code-analysis" in stats
        assert set(stats["ast-parse"]) == {"hits", "misses", "evictions", "hit_rate"}

    def test_hash_keyed_cache_evicts_least_recently_used(self):
        cache = HashKeyedCache("test-lru", max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.stats.evictions == 1
        cache.get_or_compute("b", lambda: 2)
        assert cache.stats.misses == 4


class TestCampaignSharedSpecs:
    def test_compare_defines_each_scenario_once(self, prepared_pipeline, monkeypatch):
        from repro.core import CampaignOrchestrator

        calls = []
        original = prepared_pipeline.define_fault

        def counting_define(text, code=None, path=None):
            calls.append(text)
            return original(text, code=code, path=path)

        monkeypatch.setattr(prepared_pipeline, "define_fault", counting_define)
        orchestrator = CampaignOrchestrator(prepared_pipeline, target="bank", mode="inprocess")
        scenarios = [
            "Simulate a timeout in the transfer function causing an unhandled exception",
            "Silently corrupt the amount returned by the transfer function",
        ]
        orchestrator.compare(scenarios, budget=2)
        assert len(calls) == len(scenarios)
