"""Tests for the static code analyser of the NLP engine."""

from __future__ import annotations

import pytest

from repro.errors import CodeAnalysisError
from repro.nlp import CodeAnalyzer


class TestAnalyze:
    def setup_method(self):
        self.analyzer = CodeAnalyzer()

    def test_functions_discovered_with_metadata(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        names = {info.qualified_name for info in context.functions}
        assert {"validate", "compute_total", "charge", "process_transaction"} <= names
        process = context.function("process_transaction")
        assert process.has_try
        assert process.has_return
        assert "cart" not in process.args  # args are the declared parameters
        assert "transaction_details" in process.args
        assert "validate" in process.calls

    def test_loop_and_raise_detection(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        compute = context.function("compute_total")
        assert compute.has_loop
        validate = context.function("validate")
        assert "ValueError" in validate.raises

    def test_imports_collected(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        assert "threading" in context.imports
        assert "time" in context.imports

    def test_methods_get_class_qualified_names(self):
        source = "class Api:\n    def handle(self, request):\n        return request\n"
        context = self.analyzer.analyze(source)
        assert context.functions[0].qualified_name == "Api.handle"

    def test_docstring_captured(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        assert "purchase" in (context.function("process_transaction").docstring or "")

    def test_invalid_source_raises(self):
        with pytest.raises(CodeAnalysisError):
            self.analyzer.analyze("def broken(:\n")


class TestSelectFunction:
    def setup_method(self):
        self.analyzer = CodeAnalyzer()

    def test_explicit_mention_wins(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        self.analyzer.select_function(context, "make compute_total return wrong results")
        assert context.selected_function == "compute_total"

    def test_hint_overrides_mention(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        self.analyzer.select_function(context, "anything at all", hint="charge")
        assert context.selected_function == "charge"

    def test_lexical_overlap_used_when_no_mention(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        self.analyzer.select_function(context, "the payment charge should be declined")
        assert context.selected_function == "charge"

    def test_falls_back_to_first_function(self):
        source = "def only_one():\n    return 1\n"
        context = self.analyzer.analyze(source)
        self.analyzer.select_function(context, "something entirely unrelated")
        assert context.selected_function == "only_one"

    def test_no_functions_raises(self):
        context = self.analyzer.analyze("x = 1\n")
        with pytest.raises(CodeAnalysisError):
            self.analyzer.select_function(context, "whatever")

    def test_selected_property_resolves_info(self, sample_module):
        context = self.analyzer.analyze(sample_module)
        self.analyzer.select_function(context, "validate the cart")
        assert context.selected is not None
        assert context.selected.name == context.selected_function
