"""Batched-vs-per-sample equivalence for the vectorized inference engine.

The per-sample code paths (``PolicyNetwork.forward``/``backward``,
``Decoder.greedy``/``sample``, the per-pair reward-model loop) are the
reference oracles: every batched path must reproduce them to 1e-9.  The
reference implementations of the SFT epoch and the REINFORCE update live in
this file as verbatim copies of the pre-vectorization loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, RLHFConfig, SFTConfig
from repro.llm import (
    DECISION_SLOTS,
    Decoder,
    DecisionVector,
    FaultGenerator,
    FeatureEncoder,
    PolicyNetwork,
    SFTExample,
    SFTTrainer,
    load_checkpoint,
    reference_decisions,
    save_checkpoint,
)
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.rlhf.policy_opt import PolicyOptimizer, RewardedSample
from repro.rlhf.preference import PreferenceDataset
from repro.rlhf.reward_model import RewardModel
from repro.rng import SeededRNG

ATOL = 1e-9

DESCRIPTIONS = [
    "Simulate a timeout in the process_transaction function causing an unhandled exception",
    "Make the charge function silently swallow errors instead of raising them",
    "Introduce a delay into compute_total that slows every run",
    "Remove the validation check from validate",
    "Silently corrupt the total returned by compute_total",
    "Make send_receipt fail intermittently with a network error",
]


@pytest.fixture(scope="module")
def prompts(sample_module):
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    built = []
    for text in DESCRIPTIONS:
        spec = extractor.extract_from_text(text, sample_module)
        context = analyzer.analyze(sample_module)
        analyzer.select_function(context, text, hint=spec.target.function)
        built.append(builder.build(spec, context))
    return built


@pytest.fixture()
def encoder():
    return FeatureEncoder(ModelConfig())


@pytest.fixture()
def policy():
    return PolicyNetwork(ModelConfig())


@pytest.fixture()
def features_matrix(prompts, encoder):
    return encoder.encode_batch(prompts)


@pytest.fixture()
def decisions(prompts):
    return [reference_decisions(prompt.spec) for prompt in prompts]


class TestNetworkBatchEquivalence:
    def test_forward_batch_matches_per_sample(self, policy, features_matrix):
        batched = policy.forward_batch(features_matrix)
        for row in range(features_matrix.shape[0]):
            single = policy.forward(features_matrix[row])
            assert np.allclose(batched.hidden[row], single.hidden, atol=ATOL)
            for slot in DECISION_SLOTS:
                assert np.allclose(
                    batched.probabilities[slot][row], single.probabilities[slot], atol=ATOL
                )

    def test_log_probabilities_batch_matches_per_sample(self, policy, features_matrix, decisions):
        batched = policy.log_probabilities_batch(features_matrix, decisions)
        for row, decision in enumerate(decisions):
            assert batched[row] == pytest.approx(
                policy.log_probability(features_matrix[row], decision), abs=ATOL
            )

    def test_nll_batch_matches_per_sample(self, policy, features_matrix, decisions):
        batched = policy.nll_batch(features_matrix, decisions)
        for row, decision in enumerate(decisions):
            assert batched[row] == pytest.approx(
                policy.nll(features_matrix[row], decision), abs=ATOL
            )

    def test_backward_batch_matches_accumulated_per_sample(
        self, policy, features_matrix, decisions
    ):
        scales = np.linspace(-1.5, 2.0, len(decisions))
        weights = {"template": 2.0, "severity": 0.25}
        batched = policy.backward_batch(
            policy.forward_batch(features_matrix), decisions, scales=scales, slot_weights=weights
        )
        accumulated = policy.zero_gradients()
        for row, decision in enumerate(decisions):
            forward = policy.forward(features_matrix[row])
            accumulated.add(
                policy.backward(forward, decision, scale=float(scales[row]), slot_weights=weights)
            )
        assert batched.examples == accumulated.examples
        assert np.allclose(batched.w1, accumulated.w1, atol=ATOL)
        assert np.allclose(batched.b1, accumulated.b1, atol=ATOL)
        for slot in DECISION_SLOTS:
            assert np.allclose(batched.heads_w[slot], accumulated.heads_w[slot], atol=ATOL)
            assert np.allclose(batched.heads_b[slot], accumulated.heads_b[slot], atol=ATOL)

    def test_kl_divergence_batch_matches_per_sample(self, policy, features_matrix, decisions):
        reference = policy.clone()
        for _ in range(5):
            forward = policy.forward(features_matrix[0])
            policy.apply_gradients(policy.backward(forward, decisions[0]), learning_rate=0.2)
        batched = policy.kl_divergence_batch(features_matrix, reference)
        for row in range(features_matrix.shape[0]):
            assert batched[row] == pytest.approx(
                policy.kl_divergence(features_matrix[row], reference), abs=ATOL
            )

    def test_forward_batch_rejects_wrong_shape(self, policy):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            policy.forward_batch(np.zeros((4, 3)))


class TestDecoderBatchEquivalence:
    def make_batch_distributions(self, policy, features_matrix):
        return policy.forward_batch(features_matrix).probabilities

    def test_greedy_batch_matches_per_sample(self, policy, features_matrix):
        distributions = self.make_batch_distributions(policy, features_matrix)
        decoder = Decoder()
        batched = decoder.greedy_batch(distributions)
        for row, result in enumerate(batched):
            single = decoder.greedy({slot: probs[row] for slot, probs in distributions.items()})
            assert result.decisions == single.decisions
            assert result.logprob == pytest.approx(single.logprob, abs=ATOL)
            assert result.slot_probabilities == pytest.approx(single.slot_probabilities, abs=ATOL)

    def test_sample_batch_is_deterministic_per_seed(self, policy, features_matrix):
        distributions = self.make_batch_distributions(policy, features_matrix)
        first = Decoder(rng=SeededRNG(3)).sample_batch(distributions, temperature=0.9)
        second = Decoder(rng=SeededRNG(3)).sample_batch(distributions, temperature=0.9)
        assert [r.decisions for r in first] == [r.decisions for r in second]

    def test_sample_batch_respects_one_hot_rows(self, policy, features_matrix):
        batch = features_matrix.shape[0]
        distributions = {
            slot: np.tile(np.eye(len(values))[1], (batch, 1))
            for slot, values in DECISION_SLOTS.items()
        }
        results = Decoder(rng=SeededRNG(5)).sample_batch(distributions)
        for result in results:
            for slot, values in DECISION_SLOTS.items():
                assert result.decisions.to_dict()[slot] == values[1]

    def test_sample_batch_respects_truncated_support(self, policy, features_matrix):
        distributions = self.make_batch_distributions(policy, features_matrix)
        decoder = Decoder(rng=SeededRNG(11))
        for _ in range(10):
            results = decoder.sample_batch(distributions, top_k=2)
            for row, result in enumerate(results):
                for slot, probs in distributions.items():
                    chosen = DECISION_SLOTS[slot].index(result.decisions.to_dict()[slot])
                    top_two = set(np.argsort(probs[row])[-2:])
                    assert chosen in top_two

    def test_sample_batch_logprob_uses_untruncated_distribution(self, policy, features_matrix):
        distributions = self.make_batch_distributions(policy, features_matrix)
        results = Decoder(rng=SeededRNG(13)).sample_batch(distributions, top_k=1)
        for row, result in enumerate(results):
            manual = sum(
                float(np.log(distributions[slot][row][DECISION_SLOTS[slot].index(value)] + 1e-12))
                for slot, value in result.decisions.to_dict().items()
            )
            assert result.logprob == pytest.approx(manual, abs=ATOL)


class TestTruncationRowEquivalence:
    """Row-wise truncation mirrors the per-sample helper, edge cases included."""

    CASES = [
        {"top_k": None, "top_p": None},
        {"top_k": 1, "top_p": None},
        {"top_k": 2, "top_p": None},
        {"top_k": 100, "top_p": None},  # top_k >= vocabulary: no-op
        {"top_k": None, "top_p": 0.3},
        {"top_k": None, "top_p": 0.9},
        {"top_k": None, "top_p": 1.0},  # top_p == 1.0: truncation disabled
        {"top_k": 2, "top_p": 0.5},
    ]

    def rows(self):
        rng = np.random.default_rng(42)
        raw = rng.uniform(0.01, 1.0, size=(8, 5))
        rows = raw / raw.sum(axis=1, keepdims=True)
        # An all-zero row exercises the all-mass-truncated fallback (the
        # per-sample helper returns the input distribution untouched).
        rows[3] = 0.0
        return rows

    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"k={c['top_k']}-p={c['top_p']}")
    def test_truncate_rows_matches_per_sample(self, case):
        rows = self.rows()
        batched = Decoder._truncate_rows(rows, case["top_k"], case["top_p"])
        for index in range(rows.shape[0]):
            single = Decoder._truncate(rows[index], case["top_k"], case["top_p"])
            assert np.allclose(batched[index], single, atol=ATOL), (case, index)

    def test_all_zero_row_falls_back_to_input(self):
        rows = np.zeros((2, 4))
        rows[0] = [0.25, 0.25, 0.25, 0.25]
        batched = Decoder._truncate_rows(rows, 2, None)
        assert np.allclose(batched[1], rows[1], atol=ATOL)


class TestDiverseCandidatePadding:
    def test_collapsed_distribution_pads_with_marked_duplicates(self):
        distributions = {
            slot: np.eye(len(values))[0] for slot, values in DECISION_SLOTS.items()
        }
        results = Decoder(rng=SeededRNG(17)).diverse_candidates(distributions, count=4)
        assert len(results) == 4
        assert results[0].strategy == "greedy"
        # Only one assignment exists; the padding must be flagged, not silent.
        assert all(result.strategy.endswith("-duplicate") for result in results[1:])
        assert all(result.decisions == results[0].decisions for result in results[1:])

    def test_unconstrained_distribution_still_unique(self, policy, features_matrix):
        distributions = {
            slot: probs[0] for slot, probs in policy.forward_batch(features_matrix).probabilities.items()
        }
        results = Decoder(rng=SeededRNG(19)).diverse_candidates(distributions, count=4)
        assert not any(result.strategy.endswith("-duplicate") for result in results[:2])


class TestEncoderCache:
    def test_cache_hit_returns_identical_vector(self, prompts):
        encoder = FeatureEncoder(ModelConfig())
        first = encoder.encode(prompts[0])
        second = encoder.encode(prompts[0])
        assert second is first
        assert encoder.cache_info()["hits"] == 1
        assert not second.flags.writeable

    def test_cache_disabled_still_encodes(self, prompts):
        encoder = FeatureEncoder(ModelConfig(encoder_cache_size=0))
        first = encoder.encode(prompts[0])
        second = encoder.encode(prompts[0])
        assert first is not second
        assert np.allclose(first, second, atol=ATOL)
        assert encoder.cache_info()["size"] == 0

    def test_cached_and_uncached_vectors_agree(self, prompts):
        cached = FeatureEncoder(ModelConfig())
        uncached = FeatureEncoder(ModelConfig(encoder_cache_size=0))
        for prompt in prompts:
            assert np.allclose(cached.encode(prompt), uncached.encode(prompt), atol=ATOL)

    def test_cache_eviction_respects_bound(self, prompts):
        encoder = FeatureEncoder(ModelConfig(encoder_cache_size=2))
        for prompt in prompts:
            encoder.encode(prompt)
        assert encoder.cache_info()["size"] <= 2

    def test_encode_batch_stacks_rows(self, prompts):
        encoder = FeatureEncoder(ModelConfig())
        matrix = encoder.encode_batch(prompts)
        assert matrix.shape == (len(prompts), encoder.dimension)
        for row, prompt in enumerate(prompts):
            assert np.allclose(matrix[row], encoder.encode(prompt), atol=ATOL)


class TestRenderCacheAndBatchedGeneration:
    def test_render_cache_hit_on_repeat(self, prompts):
        generator = FaultGenerator(ModelConfig())
        first = generator.generate(prompts[0], greedy=True)
        before = generator.grammar.cache_info()["hits"]
        second = generator.generate(prompts[0], greedy=True)
        assert generator.grammar.cache_info()["hits"] > before
        assert second.fault.code == first.fault.code

    def test_generate_batch_greedy_matches_per_sample(self, prompts):
        batched_generator = FaultGenerator(ModelConfig())
        serial_generator = FaultGenerator(ModelConfig())
        batched = batched_generator.generate_batch(prompts, greedy=True)
        serial = [serial_generator.generate(prompt, greedy=True) for prompt in prompts]
        for left, right in zip(batched, serial):
            assert left.fault.fault_id == right.fault.fault_id
            assert left.decisions == right.decisions
            assert left.logprob == pytest.approx(right.logprob, abs=ATOL)
            assert left.fault.code == right.fault.code

    def test_candidates_batch_matches_per_prompt_loop(self, prompts):
        batched_generator = FaultGenerator(ModelConfig())
        serial_generator = FaultGenerator(ModelConfig())
        batched = batched_generator.candidates_batch(prompts, count=3)
        serial = [serial_generator.candidates(prompt, count=3) for prompt in prompts]
        assert len(batched) == len(serial)
        for batched_round, serial_round in zip(batched, serial):
            assert [c.fault.fault_id for c in batched_round] == [
                c.fault.fault_id for c in serial_round
            ]
            assert [c.decisions for c in batched_round] == [c.decisions for c in serial_round]

    def test_logprob_batch_matches_per_sample(self, prompts, decisions):
        generator = FaultGenerator(ModelConfig())
        batched = generator.logprob_batch(prompts, decisions)
        for row, (prompt, decision) in enumerate(zip(prompts, decisions)):
            assert batched[row] == pytest.approx(generator.logprob(prompt, decision), abs=ATOL)

    def test_generate_batch_empty(self):
        generator = FaultGenerator(ModelConfig())
        assert generator.generate_batch([]) == []


def reference_sft_train(generator, config, examples):
    """Verbatim copy of the pre-vectorization per-sample SFT epoch loop."""
    policy = generator.policy
    encoder = generator.encoder
    rng = SeededRNG(config.seed, namespace="sft")
    encoded = [(encoder.encode(example.prompt), example.target) for example in examples]
    epoch_losses = []
    for _epoch in range(config.epochs):
        ordering = rng.shuffle(list(range(len(encoded)))) if config.shuffle else list(
            range(len(encoded))
        )
        epoch_loss = 0.0
        batch = policy.zero_gradients()
        for position, index in enumerate(ordering):
            features, target = encoded[index]
            forward = policy.forward(features)
            epoch_loss += -forward.log_probability(target)
            batch.add(policy.backward(forward, target))
            if batch.examples >= config.batch_size or position == len(ordering) - 1:
                policy.apply_gradients(batch, learning_rate=config.learning_rate)
                batch = policy.zero_gradients()
        epoch_losses.append(epoch_loss / len(encoded))
    return epoch_losses


def assert_states_close(left, right):
    assert set(left) == set(right)
    for key in left:
        assert np.allclose(left[key], right[key], atol=ATOL), key


class TestSFTBatchedEquivalence:
    def test_train_matches_per_sample_reference(self, prompts, decisions):
        examples = [
            SFTExample(prompt=prompt, target=target) for prompt, target in zip(prompts, decisions)
        ]
        config = SFTConfig(epochs=3, batch_size=4)
        batched_generator = FaultGenerator(ModelConfig())
        report = SFTTrainer(batched_generator, config).train(examples)

        reference_generator = FaultGenerator(ModelConfig())
        reference_losses = reference_sft_train(reference_generator, config, examples)

        assert report.epoch_losses == pytest.approx(reference_losses, abs=ATOL)
        assert_states_close(
            batched_generator.policy.state_dict(), reference_generator.policy.state_dict()
        )

    def test_evaluate_matches_per_sample_metrics(self, prompts, decisions):
        examples = [
            SFTExample(prompt=prompt, target=target) for prompt, target in zip(prompts, decisions)
        ]
        generator = FaultGenerator(ModelConfig())
        trainer = SFTTrainer(generator, SFTConfig(epochs=1))
        metrics = trainer.evaluate(examples)

        policy = generator.policy
        encoder = generator.encoder
        decoder = generator.decoder
        total_nll = 0.0
        exact = 0
        slot_hits = 0
        slot_total = 0
        for example in examples:
            features = encoder.encode(example.prompt)
            total_nll += policy.nll(features, example.target)
            decoded = decoder.greedy(policy.distributions(features)).decisions
            target_map = example.target.to_dict()
            decoded_map = decoded.to_dict()
            if decoded_map == target_map:
                exact += 1
            for slot, value in target_map.items():
                slot_total += 1
                if decoded_map[slot] == value:
                    slot_hits += 1
        assert metrics["nll"] == pytest.approx(total_nll / len(examples), abs=ATOL)
        assert metrics["exact_match"] == pytest.approx(exact / len(examples), abs=ATOL)
        assert metrics["slot_accuracy"] == pytest.approx(slot_hits / slot_total, abs=ATOL)


def reference_policy_update(policy, reference, encoder, config, baseline_state, samples):
    """Verbatim copy of the pre-vectorization per-sample REINFORCE update."""
    beta = config.kl_beta
    baseline, initialised = baseline_state
    shaped_rewards = []
    kls = []
    encoded = []
    for sample in samples:
        features = encoder.encode(sample.prompt)
        logprob = policy.log_probability(features, sample.decisions)
        ref_logprob = reference.log_probability(features, sample.decisions)
        kl_term = logprob - ref_logprob
        shaped = sample.reward - beta * kl_term
        shaped_rewards.append(shaped)
        kls.append(kl_term)
        encoded.append((features, sample.decisions, shaped))
    batch_mean = sum(shaped_rewards) / len(shaped_rewards)
    if not initialised:
        baseline = batch_mean
    momentum = config.baseline_momentum
    baseline = momentum * baseline + (1.0 - momentum) * batch_mean
    gradients = policy.zero_gradients()
    for features, decisions, shaped in encoded:
        advantage = shaped - baseline
        forward = policy.forward(features)
        gradients.add(policy.backward(forward, decisions, scale=advantage))
    policy.apply_gradients(gradients, learning_rate=config.policy_learning_rate)
    return baseline


class TestPolicyOptimizerBatchedEquivalence:
    def test_update_matches_per_sample_reference(self, prompts, decisions):
        config = RLHFConfig()
        rewards = np.linspace(-0.5, 1.5, len(prompts))
        samples = [
            RewardedSample(prompt=prompt, decisions=decision, reward=float(reward))
            for prompt, decision, reward in zip(prompts, decisions, rewards)
        ]

        batched_generator = FaultGenerator(ModelConfig())
        optimizer = PolicyOptimizer(
            policy=batched_generator.policy, encoder=batched_generator.encoder, config=config
        )
        stats = optimizer.update(samples)

        reference_generator = FaultGenerator(ModelConfig())
        frozen = reference_generator.policy.clone()
        baseline = reference_policy_update(
            reference_generator.policy,
            frozen,
            reference_generator.encoder,
            config,
            (0.0, False),
            samples,
        )

        assert stats.samples == len(samples)
        assert optimizer.baseline == pytest.approx(baseline, abs=ATOL)
        assert_states_close(
            batched_generator.policy.state_dict(), reference_generator.policy.state_dict()
        )

    def test_sequential_updates_track_reference_baseline(self, prompts, decisions):
        config = RLHFConfig()
        samples = [
            RewardedSample(prompt=prompt, decisions=decision, reward=0.5 * index)
            for index, (prompt, decision) in enumerate(zip(prompts, decisions))
        ]
        generator = FaultGenerator(ModelConfig())
        optimizer = PolicyOptimizer(
            policy=generator.policy, encoder=generator.encoder, config=config
        )
        reference_generator = FaultGenerator(ModelConfig())
        frozen = reference_generator.policy.clone()
        baseline_state = (0.0, False)
        for _round in range(3):
            optimizer.update(samples)
            baseline = reference_policy_update(
                reference_generator.policy,
                frozen,
                reference_generator.encoder,
                config,
                baseline_state,
                samples,
            )
            baseline_state = (baseline, True)
            assert optimizer.baseline == pytest.approx(baseline, abs=ATOL)
        assert_states_close(
            generator.policy.state_dict(), reference_generator.policy.state_dict()
        )


def reference_reward_fit(weights, config, dataset, l2=1e-3):
    """Verbatim copy of the pre-vectorization per-pair Bradley-Terry loop."""
    weights = weights.copy()
    losses = []
    for _epoch in range(config.reward_epochs):
        gradient = np.zeros_like(weights)
        loss = 0.0
        for pair in dataset:
            difference = pair.chosen_features - pair.rejected_features
            probability = 1.0 / (1.0 + np.exp(-(weights @ difference)))
            loss += -np.log(probability + 1e-12) * pair.margin
            gradient += (probability - 1.0) * difference * pair.margin
        gradient = gradient / len(dataset) + l2 * weights
        weights -= config.reward_learning_rate * gradient
        losses.append(float(loss / len(dataset)))
    return weights, losses


class TestRewardModelBatchedEquivalence:
    def make_dataset(self, dimension=12, pairs=20):
        rng = np.random.default_rng(7)
        dataset = PreferenceDataset()
        for index in range(pairs):
            dataset.add_comparison(
                rng.normal(size=dimension),
                rng.normal(size=dimension),
                chosen_id=f"a{index}",
                rejected_id=f"b{index}",
                margin=float(rng.uniform(0.1, 2.0)),
            )
        return dataset

    def test_fit_matches_per_pair_reference(self):
        dataset = self.make_dataset()
        config = RLHFConfig()
        model = RewardModel(12, config)
        report = model.fit(dataset)
        weights, losses = reference_reward_fit(np.zeros(12), config, dataset)
        assert np.allclose(model.weights, weights, atol=ATOL)
        assert report.losses == pytest.approx(losses, abs=ATOL)

    def test_score_batch_matches_per_sample(self):
        dataset = self.make_dataset()
        model = RewardModel(12, RLHFConfig())
        model.fit(dataset)
        matrix = np.stack([pair.chosen_features for pair in dataset])
        batched = model.score_batch(matrix)
        for row, pair in enumerate(dataset):
            assert batched[row] == pytest.approx(model.score(pair.chosen_features), abs=ATOL)

    def test_pairwise_accuracy_matches_per_pair(self):
        dataset = self.make_dataset()
        model = RewardModel(12, RLHFConfig())
        model.fit(dataset)
        per_pair = sum(
            1
            for pair in dataset
            if model.score(pair.chosen_features) > model.score(pair.rejected_features)
        ) / len(dataset)
        assert model.pairwise_accuracy(dataset) == pytest.approx(per_pair, abs=ATOL)


class TestCheckpointVersionRoundtrip:
    def test_state_dict_roundtrip_preserves_version(self, prompts, decisions, encoder):
        policy = PolicyNetwork(ModelConfig())
        features = encoder.encode(prompts[0])
        for _ in range(3):
            forward = policy.forward(features)
            policy.apply_gradients(policy.backward(forward, decisions[0]))
        assert policy.version == 3
        other = PolicyNetwork(ModelConfig())
        other.load_state(policy.state_dict())
        assert other.version == 3

    def test_checkpoint_roundtrip_preserves_version(self, tmp_path, prompts, decisions, encoder):
        policy = PolicyNetwork(ModelConfig())
        features = encoder.encode(prompts[0])
        for _ in range(5):
            forward = policy.forward(features)
            policy.apply_gradients(policy.backward(forward, decisions[0]))
        save_checkpoint(policy, tmp_path, name="versioned")
        restored = load_checkpoint(tmp_path, name="versioned")
        assert restored.version == policy.version == 5

    def test_clone_preserves_version(self, prompts, decisions, encoder):
        policy = PolicyNetwork(ModelConfig())
        features = encoder.encode(prompts[0])
        policy.apply_gradients(policy.backward(policy.forward(features), decisions[0]))
        assert policy.clone().version == policy.version == 1

    def test_legacy_state_without_version_leaves_version_alone(self):
        policy = PolicyNetwork(ModelConfig())
        state = policy.state_dict()
        state.pop("version")
        other = PolicyNetwork(ModelConfig())
        other.version = 7
        other.load_state(state)
        assert other.version == 7


class TestStreamingDatasetGeneration:
    def test_jsonl_stream_is_byte_identical_to_in_memory(self, tmp_path):
        from repro.config import DatasetConfig
        from repro.dataset import DatasetGenerator, load_jsonl, save_jsonl
        from repro.targets import get_target

        config = DatasetConfig(samples_per_target=6)
        targets = [get_target("bank"), get_target("kvstore")]

        in_memory = DatasetGenerator(config).generate(targets)
        memory_path = tmp_path / "memory.jsonl"
        save_jsonl(in_memory, memory_path)

        stream_path = tmp_path / "stream.jsonl"
        streaming_generator = DatasetGenerator(config)
        written = streaming_generator.generate_to_jsonl(stream_path, targets)

        assert written == stream_path
        assert stream_path.read_bytes() == memory_path.read_bytes()
        assert streaming_generator.stats.applied == len(in_memory)
        reloaded = load_jsonl(stream_path)
        assert [record.to_dict() for record in reloaded] == [
            record.to_dict() for record in in_memory
        ]

    def test_writer_close_is_idempotent_and_write_after_close_fails(self, tmp_path):
        from repro.dataset import JsonlRecordWriter
        from repro.errors import DatasetError

        writer = JsonlRecordWriter(tmp_path / "records.jsonl")
        writer.close()
        writer.close()
        with pytest.raises(DatasetError):
            writer.write(None)

    def test_writer_flushes_each_record(self, tmp_path):
        from repro.config import DatasetConfig
        from repro.dataset import DatasetGenerator, JsonlRecordWriter
        from repro.targets import get_target

        dataset = DatasetGenerator(DatasetConfig(samples_per_target=2)).generate(
            [get_target("bank")]
        )
        path = tmp_path / "records.jsonl"
        writer = JsonlRecordWriter(path)
        writer.write(dataset.records[0])
        # Durable before close: a reader tailing the file mid-sweep sees the line.
        assert path.read_text().count("\n") == 1
        writer.close()


class TestPipelineBatchedEntryPoints:
    def test_inject_many_matches_per_text_inject(self, sample_module):
        from repro.core.pipeline import NeuralFaultInjector

        texts = [
            "Raise a timeout in the charge function",
            "Introduce a delay into the compute_total function",
        ]
        batched = NeuralFaultInjector().inject_many(texts, code=sample_module)
        serial_pipeline = NeuralFaultInjector()
        serial = [serial_pipeline.inject(text, code=sample_module) for text in texts]
        assert [fault.fault_id for fault in batched] == [fault.fault_id for fault in serial]
        assert [fault.code for fault in batched] == [fault.code for fault in serial]

    def test_generate_faults_matches_generate_fault_loop(self, sample_module):
        from repro.core.pipeline import NeuralFaultInjector

        pipeline = NeuralFaultInjector()
        prompts = []
        for text in ["Swallow the error raised by charge", "Corrupt the total returned by compute_total"]:
            spec, context = pipeline.define_fault(text, code=sample_module)
            prompts.append(pipeline.build_prompt(spec, context))
        batched = pipeline.generate_faults(prompts, greedy=True)
        serial = [pipeline.generate_fault(prompt, greedy=True) for prompt in prompts]
        assert [c.fault.fault_id for c in batched] == [c.fault.fault_id for c in serial]
        assert [c.decisions for c in batched] == [c.decisions for c in serial]
