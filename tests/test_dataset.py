"""Tests for dataset records, description synthesis, generation, splits, and I/O."""

from __future__ import annotations

import pytest

from repro.config import DatasetConfig
from repro.dataset import (
    DatasetGenerator,
    DescriptionSynthesizer,
    FaultDataset,
    FaultRecord,
    load_jsonl,
    save_jsonl,
    split_dataset,
)
from repro.errors import DatasetError
from repro.injection import FaultLoad, ProgrammableInjector
from repro.llm import DECISION_SLOTS, DecisionVector
from repro.targets import get_target
from repro.types import FaultType


@pytest.fixture(scope="module")
def small_dataset():
    generator = DatasetGenerator(DatasetConfig(samples_per_target=12, max_faults_per_function=2))
    return generator, generator.generate()


class TestRecordsAndDataset:
    def make_record(self, index=0, fault_type=FaultType.TIMEOUT, target="ecommerce"):
        return FaultRecord(
            record_id=f"r-{index}",
            target=target,
            function="process_transaction",
            description="a timeout occurs",
            original_code="def f():\n    pass\n",
            faulty_code="def f():\n    raise TimeoutError()\n",
            fault_type=fault_type,
            operator="raise_timeout",
            decisions={"template": "timeout", "trigger": "always", "handling": "unhandled",
                       "placement": "wrap_body", "severity": "medium"},
        )

    def test_record_round_trip(self):
        record = self.make_record()
        assert FaultRecord.from_dict(record.to_dict()) == record

    def test_dataset_counts_and_filter(self):
        dataset = FaultDataset()
        dataset.add(self.make_record(0, FaultType.TIMEOUT, "ecommerce"))
        dataset.add(self.make_record(1, FaultType.RACE_CONDITION, "bank"))
        dataset.add(self.make_record(2, FaultType.TIMEOUT, "bank"))
        assert dataset.fault_type_counts()["timeout"] == 2
        assert dataset.targets() == ["ecommerce", "bank"]
        filtered = dataset.filter(fault_type=FaultType.TIMEOUT, target="bank")
        assert len(filtered) == 1
        summary = dataset.summary()
        assert summary["records"] == 3


class TestDescriptionSynthesizer:
    def applied_fault(self):
        target = get_target("ecommerce")
        injector = ProgrammableInjector()
        return injector.inject(target.build_source(), FaultLoad().add("raise_timeout", "process_transaction"))[0]

    def test_description_mentions_function(self):
        applied = self.applied_fault()
        description = DescriptionSynthesizer().describe(applied, variant=0)
        assert "process_transaction" in description

    def test_variants_differ(self):
        applied = self.applied_fault()
        variants = DescriptionSynthesizer().variants(applied)
        assert len(set(variants)) >= 2

    def test_explicit_variant_is_deterministic(self):
        applied = self.applied_fault()
        synthesizer = DescriptionSynthesizer()
        assert synthesizer.describe(applied, variant=1) == synthesizer.describe(applied, variant=1)

    def test_tool_description_passthrough(self):
        applied = self.applied_fault()
        assert DescriptionSynthesizer().tool_description(applied) == applied.description


class TestDatasetGenerator:
    def test_respects_per_target_budget(self, small_dataset):
        generator, dataset = small_dataset
        per_target = {target: 0 for target in dataset.targets()}
        for record in dataset:
            per_target[record.target] += 1
        assert all(count <= 12 for count in per_target.values())
        assert generator.stats.applied == len(dataset)

    def test_covers_many_fault_types(self, small_dataset):
        _generator, dataset = small_dataset
        assert len(dataset.fault_type_counts()) >= 8

    def test_respects_max_faults_per_function(self, small_dataset):
        _generator, dataset = small_dataset
        per_function: dict[tuple[str, str], int] = {}
        for record in dataset:
            key = (record.target, record.function)
            per_function[key] = per_function.get(key, 0) + 1
        assert max(per_function.values()) <= 2

    def test_records_have_valid_decisions_and_code(self, small_dataset):
        import ast

        _generator, dataset = small_dataset
        for record in dataset:
            DecisionVector.from_dict(record.decisions)
            ast.parse(record.faulty_code)
            assert record.faulty_code != record.original_code
            assert record.decisions["template"] == record.fault_type.value
            assert record.description

    def test_sft_examples_match_records(self, small_dataset):
        generator, dataset = small_dataset
        subset = FaultDataset(records=dataset.records[:10])
        examples = generator.to_sft_examples(subset)
        assert len(examples) == 10
        for example, record in zip(examples, subset):
            assert example.target.to_dict() == record.decisions
            assert example.prompt.spec.description

    def test_generation_is_deterministic_for_a_seed(self):
        config = DatasetConfig(samples_per_target=6, seed=99)
        first = DatasetGenerator(config).generate([get_target("bank")])
        second = DatasetGenerator(config).generate([get_target("bank")])
        assert [r.operator for r in first] == [r.operator for r in second]
        assert [r.description for r in first] == [r.description for r in second]

    def test_empty_target_list_rejected(self):
        with pytest.raises(DatasetError):
            DatasetGenerator().generate([])


class TestSplitsAndIO:
    def test_split_fractions(self, small_dataset):
        _generator, dataset = small_dataset
        splits = split_dataset(dataset, train_fraction=0.6, validation_fraction=0.2)
        sizes = splits.sizes()
        assert sizes["train"] + sizes["validation"] + sizes["test"] == len(dataset)
        assert sizes["train"] > sizes["test"]

    def test_split_is_deterministic(self, small_dataset):
        _generator, dataset = small_dataset
        first = split_dataset(dataset, seed=5)
        second = split_dataset(dataset, seed=5)
        assert [r.record_id for r in first.train] == [r.record_id for r in second.train]

    def test_split_partitions_do_not_overlap(self, small_dataset):
        _generator, dataset = small_dataset
        splits = split_dataset(dataset)
        train_ids = {record.record_id for record in splits.train}
        test_ids = {record.record_id for record in splits.test}
        assert not train_ids & test_ids

    @pytest.mark.parametrize("train,validation", [(0.0, 0.1), (0.9, 0.2), (1.0, 0.0)])
    def test_invalid_fractions_rejected(self, small_dataset, train, validation):
        _generator, dataset = small_dataset
        with pytest.raises(DatasetError):
            split_dataset(dataset, train_fraction=train, validation_fraction=validation)

    def test_jsonl_round_trip(self, tmp_path, small_dataset):
        _generator, dataset = small_dataset
        path = save_jsonl(dataset, tmp_path / "data" / "faults.jsonl")
        restored = load_jsonl(path)
        assert len(restored) == len(dataset)
        assert restored.records[0].to_dict() == dataset.records[0].to_dict()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_jsonl(tmp_path / "missing.jsonl")

    def test_load_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not valid json}\n")
        with pytest.raises(DatasetError):
            load_jsonl(path)
