"""Tests for natural-language fault specification extraction."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.nlp import FaultSpecExtractor
from repro.types import FaultDescription, FaultType, HandlingStyle, TriggerKind


@pytest.fixture()
def spec_extractor():
    return FaultSpecExtractor()


class TestFaultTypeClassification:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a database transaction fails due to a timeout", FaultType.TIMEOUT),
            ("introduce a race condition between two workers", FaultType.RACE_CONDITION),
            ("the worker leaks memory on every request", FaultType.MEMORY_LEAK),
            ("the file handle is never closed, leaking the resource", FaultType.RESOURCE_LEAK),
            ("an off-by-one error in the pagination loop", FaultType.OFF_BY_ONE),
            ("the handler silently ignores errors", FaultType.SWALLOWED_EXCEPTION),
            ("the loop never terminates and the request hangs", FaultType.INFINITE_LOOP),
            ("remove the validation check on the input", FaultType.MISSING_CHECK),
            ("it forgets to call the cleanup function", FaultType.MISSING_CALL),
            ("the function returns the wrong total", FaultType.WRONG_RETURN),
            ("silent corruption of the stored records", FaultType.DATA_CORRUPTION),
            ("a network outage makes the service unreachable", FaultType.NETWORK_FAILURE),
            ("the disk is full and writes fail with an i/o error", FaultType.DISK_FAILURE),
            ("responses become very slow due to a latency spike", FaultType.DELAY),
            ("an unhandled exception crashes the request", FaultType.EXCEPTION),
            ("a deadlock blocks both workers forever", FaultType.DEADLOCK),
        ],
    )
    def test_classification(self, spec_extractor, text, expected):
        assert spec_extractor.extract_from_text(text).fault_type is expected

    def test_unknown_when_no_cue(self, spec_extractor):
        spec = spec_extractor.extract_from_text("please review this module for style issues")
        assert spec.fault_type is FaultType.UNKNOWN
        assert spec.confidence < 0.5

    def test_empty_description_raises(self, spec_extractor):
        with pytest.raises(SpecificationError):
            spec_extractor.extract(FaultDescription(text="   "))


class TestTriggerExtraction:
    def test_percentage_probability(self, spec_extractor):
        spec = spec_extractor.extract_from_text("fail the upload 25% of the time")
        assert spec.trigger.kind is TriggerKind.PROBABILISTIC
        assert spec.trigger.probability == pytest.approx(0.25)

    def test_intermittent_keyword(self, spec_extractor):
        spec = spec_extractor.extract_from_text("the request occasionally times out")
        assert spec.trigger.kind is TriggerKind.PROBABILISTIC

    def test_nth_call(self, spec_extractor):
        spec = spec_extractor.extract_from_text("every 4th call to the API should fail with a timeout")
        assert spec.trigger.kind is TriggerKind.ON_NTH_CALL
        assert spec.trigger.nth_call == 4

    def test_conditional_clause(self, spec_extractor):
        spec = spec_extractor.extract_from_text("raise an exception when the cart is empty")
        assert spec.trigger.kind is TriggerKind.CONDITIONAL
        assert "cart is empty" in spec.trigger.condition

    def test_default_is_always(self, spec_extractor):
        spec = spec_extractor.extract_from_text("introduce a timeout in the checkout step")
        assert spec.trigger.kind is TriggerKind.ALWAYS


class TestHandlingAndDirectives:
    def test_retry_handling(self, spec_extractor):
        spec = spec_extractor.extract_from_text("a timeout occurs and a retry mechanism kicks in")
        assert spec.handling is HandlingStyle.RETRY
        assert spec.directives.get("wants_retry")

    def test_unhandled(self, spec_extractor):
        spec = spec_extractor.extract_from_text("an unhandled exception escapes the request handler")
        assert spec.handling is HandlingStyle.UNHANDLED
        assert spec.directives.get("wants_unhandled")

    def test_fallback(self, spec_extractor):
        spec = spec_extractor.extract_from_text("on failure, fall back to a default value")
        assert spec.handling is HandlingStyle.FALLBACK

    def test_logging_only(self, spec_extractor):
        spec = spec_extractor.extract_from_text("the error is caught but it only logs the error")
        assert spec.handling is HandlingStyle.LOGGED_ONLY


class TestParametersAndTarget:
    def test_seconds_parameter(self, spec_extractor):
        spec = spec_extractor.extract_from_text("add a delay of 500 milliseconds to the request")
        assert spec.parameters["seconds"] == pytest.approx(0.5)

    def test_exception_parameter_explicit(self, spec_extractor):
        spec = spec_extractor.extract_from_text("the call fails with a KeyError")
        assert spec.parameters["exception"] == "KeyError"

    def test_exception_parameter_default_for_timeout(self, spec_extractor):
        spec = spec_extractor.extract_from_text("the payment service times out")
        assert spec.parameters["exception"] == "TimeoutError"

    def test_target_from_code_context(self, spec_extractor, sample_module, running_example_text):
        spec = spec_extractor.extract_from_text(running_example_text, sample_module)
        assert spec.target.function == "process_transaction"

    def test_target_matched_by_overlap_without_mention(self, spec_extractor, sample_module):
        spec = spec_extractor.extract_from_text(
            "make the discount total computation return a corrupted amount", sample_module
        )
        assert spec.target.function == "compute_total"

    def test_components_collected(self, spec_extractor):
        spec = spec_extractor.extract_from_text("the database connection to the cache is dropped")
        assert "database" in spec.parameters.get("components", [])

    def test_confidence_higher_with_code_and_keywords(self, spec_extractor, sample_module, running_example_text):
        with_code = spec_extractor.extract_from_text(running_example_text, sample_module)
        vague = spec_extractor.extract_from_text("something odd happens")
        assert with_code.confidence > vague.confidence

    def test_running_example_spec(self, spec_extractor, sample_module, running_example_text):
        spec = spec_extractor.extract_from_text(running_example_text, sample_module)
        assert spec.fault_type is FaultType.TIMEOUT
        assert spec.handling is HandlingStyle.UNHANDLED
        assert spec.target.function == "process_transaction"
        assert spec.parameters["exception"] == "TimeoutError"
        assert spec.confidence >= 0.5
