"""Tests for the fault generator facade, SFT training, and checkpoints."""

from __future__ import annotations

import ast

import pytest

from repro.config import ModelConfig, SFTConfig
from repro.errors import CheckpointError
from repro.llm import (
    DecisionVector,
    FaultGenerator,
    SFTExample,
    SFTTrainer,
    load_checkpoint,
    reference_decisions,
    save_checkpoint,
)


class TestFaultGenerator:
    def test_generate_produces_valid_fault(self, fault_generator, sample_prompt):
        candidate = fault_generator.generate(sample_prompt)
        ast.parse(candidate.fault.code)
        assert candidate.fault.fault_id.startswith("fault-")
        assert candidate.fault.actions == candidate.decisions.to_dict()
        assert candidate.fault.patch is not None

    def test_generation_is_deterministic_for_greedy(self, fault_generator, sample_prompt):
        first = fault_generator.generate(sample_prompt)
        second = fault_generator.generate(sample_prompt)
        assert first.fault.code == second.fault.code
        assert first.fault.fault_id == second.fault.fault_id

    def test_spec_constraint_pins_template(self, sample_prompt):
        constrained = FaultGenerator(ModelConfig(constrain_to_spec=True))
        candidate = constrained.generate(sample_prompt)
        assert candidate.decisions.template == sample_prompt.spec.fault_type.value

    def test_spec_constraint_can_be_disabled(self, sample_prompt):
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        assert generator._spec_constraint(sample_prompt) == {}

    def test_candidates_are_diverse(self, fault_generator, sample_prompt):
        candidates = fault_generator.candidates(sample_prompt, count=4)
        assert len(candidates) == 4
        ids = {candidate.fault.fault_id for candidate in candidates}
        assert len(ids) == 4

    def test_forced_slots_from_feedback(self, fault_generator, sample_prompt, prompt_builder):
        refined = prompt_builder.refine(sample_prompt, {"wants_retry": True})
        assert fault_generator.forced_slots(refined) == {"handling": "retry"}
        candidate = fault_generator.generate(refined)
        assert candidate.decisions.handling == "retry"

    def test_forced_slots_explicit_values(self, fault_generator, sample_prompt, prompt_builder):
        refined = prompt_builder.refine(
            sample_prompt, {"handling": "fallback", "trigger": "probabilistic", "severity": "high"}
        )
        forced = fault_generator.forced_slots(refined)
        assert forced == {"handling": "fallback", "trigger": "probabilistic", "severity": "high"}

    def test_render_decisions_honours_explicit_vector(self, fault_generator, sample_prompt):
        decisions = DecisionVector(
            template="memory_leak", trigger="always", handling="unhandled",
            placement="body_start", severity="low",
        )
        candidate = fault_generator.render_decisions(sample_prompt, decisions)
        assert candidate.decisions == decisions
        assert "_injected_leak" in candidate.fault.code

    def test_logprob_is_finite(self, fault_generator, sample_prompt):
        decisions = reference_decisions(sample_prompt.spec)
        assert fault_generator.logprob(sample_prompt, decisions) < 0.0

    def test_model_version_tracks_training(self, fault_generator, sample_prompt):
        assert fault_generator.model_version == "policy-v0"
        fault_generator.fine_tune_step(sample_prompt, reference_decisions(sample_prompt.spec))
        assert fault_generator.model_version == "policy-v1"

    def test_no_patch_without_code_context(self, fault_generator, extractor, prompt_builder):
        spec = extractor.extract_from_text("simulate a timeout in the payment gateway")
        prompt = prompt_builder.build(spec, None)
        candidate = fault_generator.generate(prompt)
        assert candidate.fault.patch is None


class TestSFT:
    def build_examples(self, extractor, analyzer, prompt_builder, sample_module):
        texts = [
            "simulate a timeout in process_transaction",
            "introduce a race condition in process_transaction",
            "make compute_total silently corrupt its result",
            "introduce a memory leak in charge",
            "make validate silently swallow errors",
            "add a delay of 2 seconds to send_receipt",
        ]
        examples = []
        for text in texts:
            spec = extractor.extract_from_text(text, sample_module)
            context = analyzer.analyze(sample_module)
            analyzer.select_function(context, text, hint=spec.target.function)
            prompt = prompt_builder.build(spec, context)
            examples.append(SFTExample(prompt=prompt, target=reference_decisions(spec)))
        return examples

    def test_training_reduces_loss(self, extractor, analyzer, prompt_builder, sample_module):
        examples = self.build_examples(extractor, analyzer, prompt_builder, sample_module)
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        trainer = SFTTrainer(generator, SFTConfig(epochs=10, batch_size=4))
        report = trainer.train(examples)
        assert report.examples == len(examples)
        assert report.improved
        assert report.final_loss < report.initial_loss

    def test_training_improves_heldout_slot_accuracy(self, extractor, analyzer, prompt_builder, sample_module):
        examples = self.build_examples(extractor, analyzer, prompt_builder, sample_module)
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        trainer = SFTTrainer(generator, SFTConfig(epochs=12, batch_size=4))
        before = trainer.evaluate(examples)
        trainer.train(examples)
        after = trainer.evaluate(examples)
        assert after["slot_accuracy"] >= before["slot_accuracy"]
        assert after["nll"] < before["nll"]

    def test_empty_dataset_is_a_noop(self, fault_generator):
        trainer = SFTTrainer(fault_generator, SFTConfig(epochs=2))
        report = trainer.train([])
        assert report.examples == 0
        assert report.epoch_losses == []
        metrics = trainer.evaluate([])
        assert metrics["exact_match"] == 0.0


class TestCheckpoints:
    def test_round_trip(self, tmp_path, fault_generator, sample_prompt):
        decisions = reference_decisions(sample_prompt.spec)
        fault_generator.fine_tune_step(sample_prompt, decisions)
        save_checkpoint(fault_generator.policy, tmp_path, name="unit")
        restored = load_checkpoint(tmp_path, name="unit")
        features = fault_generator.encoder.encode(sample_prompt)
        assert restored.log_probability(features, decisions) == pytest.approx(
            fault_generator.policy.log_probability(features, decisions)
        )
        assert restored.version == fault_generator.policy.version

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path, name="missing")

    def test_corrupt_metadata_raises(self, tmp_path, fault_generator):
        save_checkpoint(fault_generator.policy, tmp_path, name="broken")
        (tmp_path / "broken.json").write_text("not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path, name="broken")
