"""Documentation checks: docs exist, are linked, their snippets run, and the
public execution API is documented.

Every fenced ``python`` block in README.md and docs/*.md is executed verbatim
(each in a fresh namespace), so the documentation cannot silently rot as the
API moves.  Keep doc snippets self-contained and fast: they are part of
tier-1.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

import repro.execution

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "API.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "docs" / "DISTRIBUTED.md",
    REPO_ROOT / "docs" / "EXECUTION.md",
    REPO_ROOT / "docs" / "RESILIENCE.md",
    REPO_ROOT / "docs" / "SERVING.md",
    REPO_ROOT / "docs" / "SHARDING.md",
]

_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return _BLOCK_PATTERN.findall(path.read_text())


class TestDocsExistAndAreLinked:
    def test_doc_files_exist(self):
        for path in DOC_FILES:
            assert path.is_file(), f"missing documentation file: {path}"

    def test_readme_links_all_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/API.md" in readme
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/EXECUTION.md" in readme
        assert "docs/RESILIENCE.md" in readme
        assert "docs/SERVING.md" in readme
        assert "docs/DISTRIBUTED.md" in readme
        assert "docs/SHARDING.md" in readme

    def test_docs_cross_reference_each_other(self):
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        execution = (REPO_ROOT / "docs" / "EXECUTION.md").read_text()
        resilience = (REPO_ROOT / "docs" / "RESILIENCE.md").read_text()
        serving = (REPO_ROOT / "docs" / "SERVING.md").read_text()
        distributed = (REPO_ROOT / "docs" / "DISTRIBUTED.md").read_text()
        sharding = (REPO_ROOT / "docs" / "SHARDING.md").read_text()
        assert "EXECUTION.md" in architecture
        assert "ARCHITECTURE.md" in execution
        assert "ARCHITECTURE.md" in api
        assert "API.md" in architecture
        assert "SERVING.md" in api
        assert "API.md" in serving
        assert "RESILIENCE.md" in serving
        assert "RESILIENCE.md" in architecture
        assert "SERVING.md" in resilience
        assert "EXECUTION.md" in resilience
        assert "DISTRIBUTED.md" in architecture
        assert "DISTRIBUTED.md" in execution
        assert "EXECUTION.md" in distributed
        assert "ARCHITECTURE.md" in distributed
        assert "RESILIENCE.md" in distributed
        assert "SERVING.md" in sharding
        assert "ARCHITECTURE.md" in sharding
        assert "RESILIENCE.md" in sharding
        assert "SHARDING.md" in serving
        assert "SHARDING.md" in architecture

    def test_serving_example_is_referenced(self):
        example = REPO_ROOT / "examples" / "serving_engine.py"
        assert example.is_file()
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "examples/serving_engine.py" in api

    def test_compiled_decode_is_documented(self):
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        for text in (architecture, api):
            assert "Compiled grammar decode" in text
            assert "decode_seconds" in text or "DecisionAutomaton" in text
        assert "DecisionAutomaton" in architecture
        assert "jump-forward" in architecture.lower()
        assert "benchmarks/bench_compiled_decode.py" in architecture
        assert "save_caches" in api and "caches.compiled" in api

    def test_http_client_example_is_referenced(self):
        example = REPO_ROOT / "examples" / "http_client.py"
        assert example.is_file()
        serving = (REPO_ROOT / "docs" / "SERVING.md").read_text()
        assert "examples/http_client.py" in serving

    def test_batched_example_is_referenced(self):
        example = REPO_ROOT / "examples" / "batched_dataset_generation.py"
        assert example.is_file()
        readme = (REPO_ROOT / "README.md").read_text()
        execution = (REPO_ROOT / "docs" / "EXECUTION.md").read_text()
        assert "examples/batched_dataset_generation.py" in readme
        assert "examples/batched_dataset_generation.py" in execution


@pytest.mark.pool
class TestDocSnippetsExecute:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_every_python_block_runs(self, path):
        blocks = _python_blocks(path)
        assert blocks, f"{path.name} has no ```python blocks to check"
        for index, block in enumerate(blocks):
            namespace = {"__name__": f"doc_snippet_{path.stem}_{index}"}
            exec(compile(block, f"{path.name}#block{index}", "exec"), namespace)


class TestExecutionApiIsDocumented:
    @staticmethod
    def _assert_documented(obj, label):
        assert inspect.getdoc(obj), f"{label} has no docstring"

    def test_module_and_all_public_symbols(self):
        self._assert_documented(repro.execution, "repro.execution")
        for name in repro.execution.__all__:
            self._assert_documented(getattr(repro.execution, name), f"repro.execution.{name}")

    def test_public_methods_of_public_classes(self):
        for name in repro.execution.__all__:
            symbol = getattr(repro.execution, name)
            if not inspect.isclass(symbol):
                continue
            for method_name, method in inspect.getmembers(symbol, inspect.isfunction):
                if method_name.startswith("_") and method_name != "__init__":
                    continue
                if method.__qualname__.split(".")[0] != symbol.__name__:
                    continue  # inherited from elsewhere (e.g. dataclass machinery)
                self._assert_documented(method, f"{name}.{method_name}")

    def test_batch_entry_points_use_args_sections(self):
        from repro.dataset import DatasetGenerator
        from repro.integration import ExperimentRunner, SandboxRunner
        from repro.rlhf import SimulatedTester

        for func in (
            SandboxRunner.run_batch,
            ExperimentRunner.run_many,
            SimulatedTester.review_batch,
            SimulatedTester.review_executed,
            DatasetGenerator.generate,
        ):
            doc = inspect.getdoc(func) or ""
            assert "Args:" in doc and "Returns:" in doc, f"{func.__qualname__} lacks Args/Returns"
