"""Tests for the AST helpers shared by the injection substrate."""

from __future__ import annotations

import ast

import pytest

from repro.errors import CodeAnalysisError
from repro.injection import ast_utils


SIMPLE = """
def outer(x):
    if x:
        return x + 1
    return 0


class Service:
    def handle(self, request):
        return request
"""


class TestParsing:
    def test_parse_module_valid(self):
        tree = ast_utils.parse_module(SIMPLE)
        assert isinstance(tree, ast.Module)

    def test_parse_module_invalid_raises(self):
        with pytest.raises(CodeAnalysisError):
            ast_utils.parse_module("def broken(:\n    pass")

    def test_unparse_appends_newline(self):
        tree = ast_utils.parse_module("x = 1")
        assert ast_utils.unparse(tree).endswith("\n")


class TestFunctionDiscovery:
    def test_iter_functions_finds_methods_and_functions(self):
        tree = ast_utils.parse_module(SIMPLE)
        names = {(node.name, cls) for node, cls in ast_utils.iter_functions(tree)}
        assert ("outer", None) in names
        assert ("handle", "Service") in names

    def test_function_names_qualified(self):
        tree = ast_utils.parse_module(SIMPLE)
        assert "Service.handle" in ast_utils.function_names(tree)

    def test_find_function_by_qualified_name(self):
        tree = ast_utils.parse_module(SIMPLE)
        assert ast_utils.find_function(tree, "Service.handle") is not None
        assert ast_utils.find_function(tree, "missing") is None

    def test_function_source_extracts_text(self):
        source = ast_utils.function_source(SIMPLE, "outer")
        assert source.startswith("def outer")
        assert "return x + 1" in source

    def test_function_source_missing_raises(self):
        with pytest.raises(CodeAnalysisError):
            ast_utils.function_source(SIMPLE, "nope")


class TestReplacement:
    def test_replace_function_source(self):
        replacement = "def outer(x):\n    return 42\n"
        mutated = ast_utils.replace_function_source(SIMPLE, "outer", replacement)
        module = {}
        exec(compile(mutated, "<m>", "exec"), module)
        assert module["outer"](5) == 42
        assert "Service" in mutated

    def test_replace_function_source_wrong_name_raises(self):
        with pytest.raises(CodeAnalysisError):
            ast_utils.replace_function_source(SIMPLE, "outer", "def different():\n    pass\n")

    def test_replace_function_source_multiple_defs_raises(self):
        with pytest.raises(CodeAnalysisError):
            ast_utils.replace_function_source(
                SIMPLE, "outer", "def outer():\n    pass\n\ndef extra():\n    pass\n"
            )

    def test_replace_function_source_missing_target_raises(self):
        with pytest.raises(CodeAnalysisError):
            ast_utils.replace_function_source(SIMPLE, "ghost", "def ghost():\n    pass\n")


class TestImports:
    def test_ensure_import_adds_once(self):
        tree = ast_utils.parse_module("x = 1")
        ast_utils.ensure_import(tree, "time")
        ast_utils.ensure_import(tree, "time")
        rendered = ast_utils.unparse(tree)
        assert rendered.count("import time") == 1

    def test_ensure_import_preserves_docstring_position(self):
        tree = ast_utils.parse_module('"""doc"""\nx = 1')
        ast_utils.ensure_import(tree, "os")
        rendered = ast_utils.unparse(tree)
        assert rendered.splitlines()[0].startswith('"""') or rendered.splitlines()[0].startswith("'")


class TestStatementHelpers:
    def test_statement_slots_cover_nested_bodies(self):
        source = """
def f(x):
    try:
        if x:
            y = 1
    except ValueError:
        y = 2
    finally:
        y = 3
    return y
"""
        tree = ast_utils.parse_module(source)
        function = ast_utils.find_function(tree, "f")
        slots = list(ast_utils.iter_statement_slots(function))
        texts = [ast.unparse(stmt) for _body, _i, stmt in slots]
        assert any("y = 1" in text for text in texts)
        assert any("y = 2" in text for text in texts)
        assert any("y = 3" in text for text in texts)

    def test_call_names_dotted(self):
        tree = ast_utils.parse_module("def f():\n    a.b.c(1)\n    d()\n")
        function = ast_utils.find_function(tree, "f")
        assert "a.b.c" in ast_utils.call_names(function)
        assert "d" in ast_utils.call_names(function)

    def test_body_insert_index_skips_docstring(self):
        tree = ast_utils.parse_module('def f():\n    """doc"""\n    return 1\n')
        function = ast_utils.find_function(tree, "f")
        assert ast_utils.body_insert_index(function) == 1

    def test_contains_node_type(self):
        tree = ast_utils.parse_module("def f():\n    for i in range(3):\n        pass\n")
        function = ast_utils.find_function(tree, "f")
        assert ast_utils.contains_node_type(function, ast.For)
        assert not ast_utils.contains_node_type(function, ast.While)


class TestPerturbConstant:
    @pytest.mark.parametrize(
        "value,expected_type",
        [(3, int), (2.5, float), ("name", str), (True, bool), (None, int)],
    )
    def test_preserves_type_family(self, value, expected_type):
        assert isinstance(ast_utils.perturb_constant(value), expected_type)

    def test_changes_value(self):
        assert ast_utils.perturb_constant(3) != 3
        assert ast_utils.perturb_constant(True) is False
        assert ast_utils.perturb_constant("x") != "x"

    def test_statement_builders_produce_valid_nodes(self):
        raise_node = ast_utils.make_raise("ValueError", "boom")
        sleep_node = ast_utils.make_sleep(0.5)
        print_node = ast_utils.make_print("hello")
        module = ast.Module(body=[ast.FunctionDef(
            name="f",
            args=ast.arguments(posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[], defaults=[]),
            body=[print_node, sleep_node, raise_node],
            decorator_list=[],
        )], type_ignores=[])
        rendered = ast_utils.unparse(module)
        ast.parse(rendered)
        assert "time.sleep(0.5)" in rendered
        assert "raise ValueError('boom')" in rendered
