"""Tests for the distributed execution plane: coordinator, workers, launcher.

Real-fleet tests share one module-scoped runner so the localhost workers are
spawned once; scripted-worker tests drive the coordinator over real sockets
with in-process threads, so supervision bookkeeping (budgets, quarantine,
elastic membership) is exercised without paying process-spawn time.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import (
    DistributedConfig,
    ExecutionConfig,
    IntegrationConfig,
    PipelineConfig,
    ResilienceConfig,
)
from repro.distributed import (
    DistributedPool,
    GoodbyeFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    recv_frame,
    send_frame,
)
from repro.errors import ConfigurationError, SandboxError
from repro.integration import SandboxRunner
from repro.targets import get_target

pytestmark = pytest.mark.pool


@pytest.fixture(scope="module")
def bank_source() -> str:
    return get_target("bank").build_source()


@pytest.fixture(scope="module")
def dist_runner():
    """One warm runner with a 3-worker localhost fleet, shared by the module."""
    runner = SandboxRunner(
        IntegrationConfig(test_timeout_seconds=10.0, workload_iterations=5),
        execution=ExecutionConfig(max_workers=3, distributed=DistributedConfig(workers=3)),
    )
    yield runner
    runner.close()


class TestDistributedConfig:
    def test_defaults_round_trip_through_pipeline_config(self):
        config = PipelineConfig()
        assert config.execution.distributed.spawn_workers is True
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.execution.to_dict() == config.execution.to_dict()

    def test_distributed_is_a_known_execution_mode(self):
        ExecutionConfig(default_mode="distributed")

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            DistributedConfig(host="")
        with pytest.raises(ConfigurationError):
            DistributedConfig(port=70000)
        with pytest.raises(ConfigurationError):
            DistributedConfig(worker_capacity=0)
        with pytest.raises(ConfigurationError):
            DistributedConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            DistributedConfig(heartbeat_interval_seconds=0)
        with pytest.raises(ConfigurationError):
            DistributedConfig(heartbeat_interval_seconds=1.0, heartbeat_timeout_seconds=0.5)
        with pytest.raises(ConfigurationError):
            DistributedConfig(worker_wait_seconds=0)


class TestDistributedFleetExecution:
    def test_batch_preserves_submission_order(self, dist_runner, bank_source):
        kv_source = get_target("kvstore").build_source()
        observations = dist_runner.run_batch(
            "bank", [bank_source] * 3, seed=5, iterations=5, mode="distributed"
        )
        assert [o.completed for o in observations] == [True] * 3
        kv = dist_runner.run_batch(
            "kvstore", [kv_source] * 2, seed=5, iterations=5, mode="distributed"
        )
        assert [o.completed for o in kv] == [True] * 2
        assert all(o.result.target == "kvstore" for o in kv)

    def test_distributed_matches_pool_results(self, dist_runner, bank_source):
        distributed = dist_runner.run_batch(
            "bank", [bank_source] * 4, seed=11, iterations=5, mode="distributed"
        )
        with SandboxRunner(
            IntegrationConfig(test_timeout_seconds=10.0, workload_iterations=5),
            execution=ExecutionConfig(max_workers=2),
        ) as local:
            pooled = local.run_batch("bank", [bank_source] * 4, seed=11, iterations=5, mode="pool")

        def stable(observation):
            data = observation.result.to_dict()
            data.pop("duration_seconds", None)
            return data

        assert [stable(o) for o in distributed] == [stable(o) for o in pooled]

    def test_single_run_supports_distributed_mode(self, dist_runner, bank_source):
        observation = dist_runner.run(
            "bank", bank_source, seed=5, iterations=5, mode="distributed"
        )
        assert observation.completed

    def test_stats_expose_distribution_counters(self, dist_runner, bank_source):
        dist_runner.run_batch("bank", [bank_source] * 2, seed=5, iterations=5, mode="distributed")
        stats = dist_runner.distributed_stats()
        assert stats["workers"] == 3
        assert stats["tasks_executed"] >= 2
        assert stats["leases"] >= 2
        for key in ("pool_rebuilds", "retries", "quarantined", "requeues", "rebalances"):
            assert stats[key] >= 0

    def test_timeouts_are_observed_remotely(self, dist_runner):
        hang = "import time\ntime.sleep(60)\n"
        observations = dist_runner.run_batch(
            "bank", [hang], seed=5, iterations=5, mode="distributed", timeout_seconds=1.0
        )
        assert observations[0].timed_out


class _ScriptedWorker:
    """An in-process peer speaking the real protocol with scripted behaviour.

    ``script`` is consumed one entry per lease: ``"ok"`` returns payloads for
    every task, ``"die"`` drops the connection mid-lease, ``"empty"`` returns
    a RESULT frame with every task missing (the chaos-drop shape), and
    ``"stall"`` sleeps past the heartbeat timeout without beating.  When the
    script runs dry the worker keeps answering ``"ok"``.
    """

    def __init__(self, pool: DistributedPool, script: tuple[str, ...] = (), capacity: int = 1):
        self.pool = pool
        self.script = list(script)
        self.capacity = capacity
        self.served: list[str] = []
        self.thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "_ScriptedWorker":
        self.thread.start()
        return self

    @staticmethod
    def payload_for(task: dict) -> dict:
        return {"status": "ok", "result": {"echo": task["source"], "seed": task["seed"]}}

    def _run(self) -> None:
        import socket

        host, port = self.pool.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            send_frame(sock, HelloFrame(worker_id="scripted", capacity=self.capacity))
            register = recv_frame(sock)
            assert isinstance(register, RegisterFrame)
            while True:
                frame = recv_frame(sock)
                if isinstance(frame, GoodbyeFrame):
                    return
                assert isinstance(frame, LeaseFrame)
                action = self.script.pop(0) if self.script else "ok"
                self.served.append(action)
                if action == "die":
                    return
                if action == "stall":
                    time.sleep(self.pool.distributed.heartbeat_timeout_seconds + 0.3)
                    continue
                results = {}
                if action == "ok":
                    results = {
                        str(task["task_id"]): self.payload_for(task) for task in frame.tasks
                    }
                send_frame(sock, ResultFrame(lease_id=frame.lease_id, results=results))
        except (ConnectionError, OSError):
            return
        finally:
            sock.close()


def _scripted_pool(**overrides) -> DistributedPool:
    settings = {
        "spawn_workers": False,
        "worker_wait_seconds": 5.0,
        "heartbeat_interval_seconds": 0.05,
        "heartbeat_timeout_seconds": 0.5,
    }
    settings.update(overrides.pop("distributed", {}))
    return DistributedPool(
        max_workers=2,
        task_timeout_seconds=2.0,
        distributed=DistributedConfig(**settings),
        **overrides,
    )


class TestCoordinatorSupervision:
    def test_scripted_worker_serves_a_batch_in_order(self):
        with _scripted_pool() as pool:
            _ScriptedWorker(pool).start()
            payloads = pool.run_batch("bank", ["a", "b", "c"], seed=9, iterations=1)
        assert [p["result"]["echo"] for p in payloads] == ["a", "b", "c"]
        assert pool.stats()["tasks_executed"] == 3

    def test_worker_death_requeues_onto_survivors(self):
        with _scripted_pool() as pool:
            _ScriptedWorker(pool, script=("die",)).start()
            survivor = _ScriptedWorker(pool).start()
            payloads = pool.run_batch("bank", ["a", "b"], seed=9, iterations=1)
            stats = pool.stats()
        assert [p["status"] for p in payloads] == ["ok", "ok"]
        assert stats["requeues"] >= 1
        assert stats["retries"] >= 1
        assert stats["rebalances"] >= 1
        assert "ok" in survivor.served

    def test_elastic_join_mid_batch_completes_the_work(self):
        with _scripted_pool() as pool:
            done = threading.Event()
            results: list = []

            def run():
                results.extend(pool.run_batch("bank", ["a", "b"], seed=9, iterations=1))
                done.set()

            threading.Thread(target=run, daemon=True).start()
            time.sleep(0.3)  # batch is waiting with zero workers
            _ScriptedWorker(pool).start()
            assert done.wait(timeout=5.0)
        assert [p["status"] for p in results] == ["ok", "ok"]
        assert pool.stats()["rebalances"] >= 1

    def test_retry_budget_exhaustion_fails_the_task(self):
        resilience = ResilienceConfig(task_retry_budget=2)
        with _scripted_pool(resilience=resilience) as pool:
            # Every lease comes back with the result missing (the chaos-drop
            # shape), so the task is requeued unattributed until the budget.
            _ScriptedWorker(pool, script=("empty",) * 8).start()
            payloads = pool.run_batch("bank", ["a"], seed=9, iterations=1)
            stats = pool.stats()
        assert payloads[0]["status"] == "error"
        assert "retry budget (2) is exhausted" in payloads[0]["error"]
        assert stats["retries"] == 2
        assert stats["quarantined"] == 0

    def test_repeat_killer_is_quarantined(self):
        resilience = ResilienceConfig(quarantine_threshold=2, task_retry_budget=5)
        with _scripted_pool(resilience=resilience) as pool:
            killers = [_ScriptedWorker(pool, script=("die",)) for _ in range(2)]
            for worker in killers:
                worker.start()
                time.sleep(0.05)
            payloads = pool.run_batch("bank", ["a"], seed=9, iterations=1)
            stats = pool.stats()
        assert payloads[0]["status"] == "error"
        assert payloads[0].get("quarantined") is True
        assert "quarantined after killing 2 distributed workers" in payloads[0]["error"]
        assert stats["quarantined"] == 1

    def test_missed_heartbeats_requeue_the_lease(self):
        with _scripted_pool() as pool:
            _ScriptedWorker(pool, script=("stall",)).start()
            time.sleep(0.05)
            rescuer = _ScriptedWorker(pool).start()
            payloads = pool.run_batch("bank", ["a"], seed=9, iterations=1)
            stats = pool.stats()
        assert payloads[0]["status"] == "ok"
        assert stats["requeues"] >= 1
        assert "ok" in rescuer.served

    def test_no_workers_fails_after_the_wait_budget(self):
        with _scripted_pool(distributed={"worker_wait_seconds": 0.3}) as pool:
            started = time.monotonic()
            payloads = pool.run_batch("bank", ["a", "b"], seed=9, iterations=1)
            elapsed = time.monotonic() - started
        assert [p["status"] for p in payloads] == ["error", "error"]
        assert "no distributed workers available" in payloads[0]["error"]
        assert elapsed < 4.0

    def test_shutdown_is_idempotent_and_final(self):
        pool = _scripted_pool()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(SandboxError):
            pool.run_batch("bank", ["a"], seed=9, iterations=1)

    def test_liveness_reflects_membership(self):
        with _scripted_pool() as pool:
            assert pool.check_liveness()  # nothing has run yet
            _ScriptedWorker(pool).start()
            pool.run_batch("bank", ["a"], seed=9, iterations=1)
            assert pool.check_liveness()
