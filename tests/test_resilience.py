"""The resilience subsystem: retries, breakers, deadlines, supervision.

Unit tests pin the deterministic primitives (seeded retry jitter, the
breaker state machine with an injected clock, chaos decisions); integration
tests drive them through the worker pool, scheduler, and engine exactly as
serving traffic does.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PipelineConfig
from repro.api import ErrorInfo, FaultInjectionEngine, GenerateRequest, DatasetRequest
from repro.api.responses import error_kind_for
from repro.api.scheduler import ResponseHandle, Scheduler, Ticket
from repro.config import ChaosConfig, EngineConfig, ExecutionConfig, ResilienceConfig
from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    EngineClosedError,
    ReproError,
    RequestCancelledError,
    RequestError,
)
from repro.execution import WorkerPool
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    chaos_payload,
    should_inject,
)
from repro.targets import get_target

DESCRIPTION = "Simulate a timeout in the transfer function causing an unhandled exception"

#: Kills the hosting worker process outright while the module loads.
EXIT_ON_LOAD = "import os\nos._exit(7)\n"


class FakeClock:
    """A steppable monotonic clock for breaker/deadline tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_key_dependent(self):
        policy = RetryPolicy(max_attempts=4, base_delay_seconds=0.01, seed=7)
        assert policy.schedule("bank:pool") == policy.schedule("bank:pool")
        assert policy.schedule("bank:pool") != policy.schedule("kvstore:pool")
        assert len(policy.schedule("bank:pool")) == 3

    def test_backoff_grows_exponentially_under_the_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_seconds=0.1, max_delay_seconds=0.4, jitter=0.0
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_stays_within_the_configured_fraction(self):
        policy = RetryPolicy(max_attempts=5, base_delay_seconds=0.1, jitter=0.25)
        for attempt in range(4):
            bare = RetryPolicy(
                max_attempts=5, base_delay_seconds=0.1, jitter=0.0
            ).delay(attempt)
            assert bare <= policy.delay(attempt, "k") < bare * 1.25

    def test_run_retries_then_succeeds(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.01, sleep=sleeps.append)
        calls = {"count": 0}

        def flaky():
            calls["count"] += 1
            if calls["count"] < 3:
                raise ReproError("transient")
            return "done"

        assert policy.run(flaky, key="bank:pool", retry_on=(ReproError,)) == "done"
        assert calls["count"] == 3
        assert sleeps == policy.schedule("bank:pool")

    def test_run_reraises_after_exhaustion(self):
        policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.0, sleep=lambda _s: None)
        with pytest.raises(ReproError, match="persistent"):
            policy.run(lambda: (_ for _ in ()).throw(ReproError("persistent")))

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        calls = {"count": 0}

        def typed_failure():
            calls["count"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.run(typed_failure, retry_on=(ReproError,))
        assert calls["count"] == 1

    def test_expired_deadline_stops_retrying(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=5, base_delay_seconds=0.01, sleep=sleeps.append)
        calls = {"count": 0}

        def failing():
            calls["count"] += 1
            raise ReproError("transient")

        with pytest.raises(ReproError):
            policy.run(failing, retry_on=(ReproError,), deadline=deadline)
        assert calls["count"] == 1  # no budget left → no second attempt
        assert sleeps == []

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_seconds=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)

    def test_from_config_mirrors_the_resilience_section(self):
        config = ResilienceConfig(retry_max_attempts=7, retry_seed=3, retry_jitter=0.5)
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 7
        assert policy.seed == 3
        assert policy.jitter == 0.5


class TestDeadline:
    def test_from_seconds_none_means_unbounded(self):
        assert Deadline.from_seconds(None) is None
        assert isinstance(Deadline.from_seconds(5.0), Deadline)

    def test_budget_accounting_with_a_stepped_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_a_typed_error(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        deadline.check()  # healthy: no raise
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError, match="sandbox"):
            deadline.check("sandbox batch")

    def test_clamp_bounds_layer_timeouts_by_the_budget(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(2.0)
        assert deadline.clamp(0.5) == pytest.approx(0.5)
        assert deadline.clamp(None) == pytest.approx(2.0)

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, recovery=5.0, probes=1):
        return CircuitBreaker(
            key="bank:pool",
            failure_threshold=threshold,
            recovery_seconds=recovery,
            half_open_calls=probes,
            clock=clock,
        )

    def test_trips_after_consecutive_failures_and_recovers(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_success_resets_the_failure_streak(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_slots_are_reserved(self):
        clock = FakeClock()
        breaker = self._breaker(clock, probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()  # the single probe slot is taken

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.to_dict()["trips"] == 2

    def test_check_raises_with_the_plane_key(self):
        breaker = self._breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError, match="bank:pool"):
            breaker.check()

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_seconds=0)

    def test_registry_keys_breakers_per_target_and_mode(self):
        registry = BreakerRegistry(ResilienceConfig(), clock=FakeClock())
        bank_pool = registry.get("bank", "pool")
        assert registry.get("bank", "pool") is bank_pool
        assert registry.get("bank", "subprocess") is not bank_pool
        bank_pool.record_failure()
        snapshot = registry.to_dict()
        assert sorted(snapshot) == ["bank:pool", "bank:subprocess"]
        assert snapshot["bank:pool"]["consecutive_failures"] == 1


class TestChaosDecisions:
    def test_decisions_are_deterministic(self):
        config = ChaosConfig(enabled=True, seed=31, worker_crash_probability=0.5)
        decisions = [should_inject(config, f"bank:0:{i}", "crash", 0) for i in range(64)]
        assert decisions == [
            should_inject(config, f"bank:0:{i}", "crash", 0) for i in range(64)
        ]
        assert any(decisions) and not all(decisions)

    def test_chaos_never_fires_after_the_first_attempt(self):
        config = ChaosConfig(
            enabled=True,
            worker_crash_probability=1.0,
            task_delay_probability=1.0,
            drop_result_probability=1.0,
        )
        for kind in ("crash", "delay", "drop"):
            assert should_inject(config, "k", kind, 0)
            assert not should_inject(config, "k", kind, 1)

    def test_disabled_config_never_fires(self):
        config = ChaosConfig(enabled=False, worker_crash_probability=1.0)
        assert not should_inject(config, "k", "crash", 0)
        assert chaos_payload(config) is None
        assert chaos_payload(None) is None

    def test_payload_round_trips_through_the_wire_form(self):
        config = ChaosConfig(enabled=True, seed=5, drop_result_probability=0.25)
        assert ChaosConfig(**chaos_payload(config)) == config

    def test_probabilities_are_validated(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(worker_crash_probability=1.5)


class TestErrorKinds:
    @pytest.mark.parametrize(
        ("exc", "kind"),
        [
            (DeadlineExceededError("x"), "timeout"),
            (RequestCancelledError("x"), "cancelled"),
            (AdmissionError("x"), "overloaded"),
            (CircuitOpenError("x", key="bank:pool"), "unavailable"),
            (EngineClosedError("x"), "unavailable"),
            (RequestError("x"), "error"),
            (ValueError("x"), "error"),
        ],
    )
    def test_exceptions_map_to_machine_readable_kinds(self, exc, kind):
        assert error_kind_for(exc) == kind
        assert ErrorInfo.from_exception(exc).kind == kind

    def test_kind_survives_the_wire_round_trip(self):
        info = ErrorInfo.from_exception(DeadlineExceededError("too slow"))
        assert ErrorInfo.from_dict(info.to_dict()) == info

    def test_pre_kind_wire_errors_decode_as_plain_errors(self):
        # Envelopes written before the kind field existed.
        assert ErrorInfo.from_dict({"type": "ReproError", "message": "m"}).kind == "error"


class TestDeadlineRequestField:
    @pytest.mark.parametrize("bad", [0, -1.5, "soon", True])
    def test_invalid_deadlines_are_rejected(self, bad):
        with pytest.raises(RequestError, match="deadline_seconds"):
            GenerateRequest(description=DESCRIPTION, deadline_seconds=bad)

    def test_deadline_round_trips_through_the_wire(self):
        request = GenerateRequest(description=DESCRIPTION, deadline_seconds=2.5)
        assert GenerateRequest.from_dict(request.to_dict()) == request


class TestResponseHandleTimeout:
    def test_result_timeout_returns_an_envelope_not_a_raw_exception(self):
        handle = ResponseHandle("req-1", "generate")
        response = handle.result(timeout=0.01)
        assert response.status == "error"
        assert response.error.kind == "timeout"
        assert not handle.done()  # the request is still in flight

    def test_a_later_result_call_still_observes_the_real_outcome(self):
        from repro.api import Response

        handle = ResponseHandle("req-1", "generate")
        assert handle.result(timeout=0.01).error is not None
        handle._resolve(Response(request_id="req-1", kind="generate", status="ok"))
        assert handle.result(timeout=1.0).ok


class TestSchedulerResilience:
    def _scheduler(self, release: threading.Event, started: threading.Event):
        def blocking_single(ticket: Ticket) -> None:
            started.set()
            release.wait(10.0)
            ticket.handle._resolve(
                __import__("repro.api", fromlist=["Response"]).Response(
                    request_id=ticket.handle.request_id, kind=ticket.request.kind, status="ok"
                )
            )

        return Scheduler(
            dispatch_batch=lambda tickets: [blocking_single(t) for t in tickets],
            dispatch_single=blocking_single,
            max_batch_size=1,
            max_queue_delay_seconds=0.0,
        )

    def test_cancel_recalls_a_queued_ticket(self):
        release, started = threading.Event(), threading.Event()
        scheduler = self._scheduler(release, started)
        blocker = Ticket(request=DatasetRequest(), handle=ResponseHandle("req-0", "dataset"))
        queued = Ticket(request=DatasetRequest(), handle=ResponseHandle("req-1", "dataset"))
        scheduler.submit(blocker)
        assert started.wait(5.0)
        scheduler.submit(queued)
        try:
            assert queued.handle.cancel()
            response = queued.handle.result(timeout=5.0)
            assert response.status == "cancelled"
            assert response.error.kind == "cancelled"
            assert not queued.handle.cancel()  # already resolved
        finally:
            release.set()
            scheduler.close()
        assert blocker.handle.result(timeout=5.0).ok  # executing work was untouched

    def test_cancel_cannot_recall_dispatched_work(self):
        release, started = threading.Event(), threading.Event()
        scheduler = self._scheduler(release, started)
        ticket = Ticket(request=DatasetRequest(), handle=ResponseHandle("req-0", "dataset"))
        scheduler.submit(ticket)
        try:
            assert started.wait(5.0)
            assert not ticket.handle.cancel()
        finally:
            release.set()
            scheduler.close()

    def test_expired_tickets_resolve_without_dispatching(self):
        release, started = threading.Event(), threading.Event()
        scheduler = self._scheduler(release, started)
        blocker = Ticket(request=DatasetRequest(), handle=ResponseHandle("req-0", "dataset"))
        scheduler.submit(blocker)
        assert started.wait(5.0)
        doomed = Ticket(
            request=DatasetRequest(),
            handle=ResponseHandle("req-1", "dataset"),
            deadline=Deadline(0.001),
        )
        scheduler.submit(doomed)
        time.sleep(0.01)
        release.set()
        try:
            response = doomed.handle.result(timeout=5.0)
            assert response.status == "error"
            assert response.error.kind == "timeout"
            assert "queued" in response.error.message
        finally:
            scheduler.close()


@pytest.mark.pool
class TestSupervisedPool:
    def test_poison_task_is_quarantined_not_retried_forever(self):
        bank = get_target("bank").build_source()
        resilience = ResilienceConfig(quarantine_threshold=2, task_retry_budget=3)
        with WorkerPool(max_workers=2, task_timeout_seconds=5.0, resilience=resilience) as pool:
            payloads = pool.run_batch(
                "bank", [bank, bank + EXIT_ON_LOAD, bank], seed=3, iterations=10
            )
            assert [p["status"] for p in payloads] == ["ok", "error", "ok"]
            assert payloads[1].get("quarantined") is True
            assert pool.quarantined == 1
            assert pool.pool_rebuilds >= 1
            assert pool.stats()["quarantined"] == 1
            # the pool still serves healthy work afterwards
            assert [p["status"] for p in pool.run_batch("bank", [bank], iterations=10)] == ["ok"]

    def test_unsupervised_mode_keeps_the_legacy_behaviour(self):
        bank = get_target("bank").build_source()
        resilience = ResilienceConfig(supervise=False)
        with WorkerPool(max_workers=1, task_timeout_seconds=5.0, resilience=resilience) as pool:
            payloads = pool.run_batch("bank", [bank, bank + EXIT_ON_LOAD, bank], iterations=10)
            assert [p["status"] for p in payloads] == ["ok", "error", "ok"]
            assert pool.quarantined == 0  # quarantine is a supervision feature

    def test_liveness_check_recycles_a_dead_pool(self):
        bank = get_target("bank").build_source()
        with WorkerPool(max_workers=1, task_timeout_seconds=5.0) as pool:
            pool.run_batch("bank", [bank + EXIT_ON_LOAD], iterations=10)
            assert pool.run_batch("bank", [bank], iterations=10)[0]["status"] == "ok"


@pytest.mark.pool
class TestEngineResilience:
    def _config(self) -> PipelineConfig:
        return PipelineConfig(
            execution=ExecutionConfig(max_workers=2),
            engine=EngineConfig(max_queue_delay_seconds=0.0),
        )

    def test_open_breaker_degrades_generate_requests(self):
        with FaultInjectionEngine(self._config()) as engine:
            breaker = engine._breakers.get("bank", "pool")
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            response = engine.run(
                GenerateRequest(description=DESCRIPTION, target="bank", execute=True, mode="pool")
            )
            assert response.status == "degraded"
            assert response.payload is not None  # the generated fault is still delivered
            assert response.payload.outcome is None
            assert response.error.kind == "unavailable"
            stats = engine.execution_stats()
            assert stats["breakers"]["bank:pool"]["state"] in (OPEN, HALF_OPEN)

    def test_open_breaker_fails_heavyweight_requests_fast(self):
        from repro.api import CampaignRequest

        with FaultInjectionEngine(self._config()) as engine:
            breaker = engine._breakers.get("bank", "pool")
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            response = engine.run(
                CampaignRequest(
                    target="bank", scenarios=(DESCRIPTION,), techniques=("neural",), mode="pool"
                )
            )
            assert response.status == "error"
            assert response.error.kind == "unavailable"

    def test_queued_deadline_surfaces_as_a_timeout_envelope(self):
        with FaultInjectionEngine(self._config()) as engine:
            blocker = engine.submit(
                DatasetRequest(targets=("bank",), samples_per_target=2)
            )
            doomed = engine.submit(
                GenerateRequest(description=DESCRIPTION, deadline_seconds=0.001)
            )
            response = doomed.result(timeout=60.0)
            assert response.status == "error"
            assert response.error.kind == "timeout"
            assert blocker.result(timeout=120.0).ok

    def test_generous_deadlines_do_not_disturb_results(self):
        with FaultInjectionEngine(self._config()) as engine:
            bounded = engine.run(
                GenerateRequest(description=DESCRIPTION, target="bank", deadline_seconds=120.0)
            )
            unbounded = engine.run(GenerateRequest(description=DESCRIPTION, target="bank"))
            assert bounded.ok and unbounded.ok
            assert (
                bounded.payload.deterministic_dict() == unbounded.payload.deterministic_dict()
            )

    def test_execution_stats_report_pool_counters(self):
        with FaultInjectionEngine(self._config()) as engine:
            response = engine.run(
                GenerateRequest(description=DESCRIPTION, target="bank", execute=True, mode="pool")
            )
            assert response.ok
            stats = engine.execution_stats()
            assert stats["totals"]["tasks_executed"] >= 1
            assert "bank" in stats["pools"]
