"""Tests for the shared datatypes in :mod:`repro.types`."""

from __future__ import annotations

import json

import pytest

from repro.types import (
    Entity,
    EntityLabel,
    FailureMode,
    FaultSpec,
    FaultType,
    Feedback,
    GeneratedFault,
    HandlingStyle,
    InjectionOutcome,
    Patch,
    TargetLocation,
    TriggerKind,
    TriggerSpec,
    stable_fault_id,
    summarise_outcomes,
    to_json,
)


class TestFaultType:
    def test_concrete_excludes_unknown(self):
        concrete = FaultType.concrete()
        assert FaultType.UNKNOWN not in concrete
        assert FaultType.TIMEOUT in concrete

    def test_concrete_covers_all_other_members(self):
        assert len(FaultType.concrete()) == len(FaultType) - 1

    def test_values_are_snake_case_strings(self):
        for member in FaultType:
            assert member.value == member.value.lower()
            assert " " not in member.value


class TestFailureMode:
    def test_no_failure_is_not_a_failure(self):
        assert not FailureMode.NO_FAILURE.is_failure

    @pytest.mark.parametrize(
        "mode",
        [FailureMode.CRASH, FailureMode.HANG, FailureMode.SILENT_DATA_CORRUPTION, FailureMode.DEGRADED],
    )
    def test_other_modes_are_failures(self, mode):
        assert mode.is_failure


class TestTriggerSpec:
    def test_round_trip(self):
        trigger = TriggerSpec(kind=TriggerKind.PROBABILISTIC, probability=0.25)
        assert TriggerSpec.from_dict(trigger.to_dict()) == trigger

    def test_defaults_to_always(self):
        assert TriggerSpec().kind is TriggerKind.ALWAYS

    def test_from_empty_dict(self):
        assert TriggerSpec.from_dict({}).kind is TriggerKind.ALWAYS


class TestFaultSpec:
    def test_round_trip_preserves_entities(self):
        spec = FaultSpec(
            fault_type=FaultType.TIMEOUT,
            target=TargetLocation(function="process_transaction"),
            trigger=TriggerSpec(kind=TriggerKind.CONDITIONAL, condition="the cart is empty"),
            handling=HandlingStyle.RETRY,
            entities=[Entity(text="timeout", label=EntityLabel.FAULT_KEYWORD, start=0, end=7)],
            parameters={"seconds": 1.5},
            directives={"wants_retry": True},
            description="a timeout",
            confidence=0.8,
        )
        restored = FaultSpec.from_dict(spec.to_dict())
        assert restored.fault_type is FaultType.TIMEOUT
        assert restored.handling is HandlingStyle.RETRY
        assert restored.entities[0].label is EntityLabel.FAULT_KEYWORD
        assert restored.parameters["seconds"] == 1.5
        assert restored.trigger.condition == "the cart is empty"

    def test_default_spec_is_unknown_and_unhandled(self):
        spec = FaultSpec()
        assert spec.fault_type is FaultType.UNKNOWN
        assert spec.handling is HandlingStyle.UNHANDLED
        assert spec.confidence == 0.0

    def test_to_dict_is_json_serialisable(self):
        spec = FaultSpec(fault_type=FaultType.RACE_CONDITION, description="race")
        json.loads(to_json(spec))


class TestPatch:
    def test_diff_contains_both_versions(self):
        patch = Patch(original="x = 1\n", mutated="x = 2\n", target_path="m.py")
        assert "-x = 1" in patch.diff
        assert "+x = 2" in patch.diff

    def test_changed_line_count_counts_only_changes(self):
        patch = Patch(original="a = 1\nb = 2\n", mutated="a = 1\nb = 3\n")
        assert patch.changed_line_count == 2

    def test_identical_sources_have_empty_diff(self):
        patch = Patch(original="a = 1\n", mutated="a = 1\n")
        assert patch.diff == ""
        assert patch.changed_line_count == 0


class TestGeneratedFault:
    def test_is_integrated_requires_patch(self):
        spec = FaultSpec(description="x")
        fault = GeneratedFault(fault_id="f1", spec=spec, code="def f():\n    pass\n")
        assert not fault.is_integrated
        fault.patch = Patch(original="a", mutated="b")
        assert fault.is_integrated

    def test_to_dict_includes_actions_and_metadata(self):
        spec = FaultSpec(description="x")
        fault = GeneratedFault(
            fault_id="f1", spec=spec, code="pass", actions={"template": "timeout"}, metadata={"k": 1}
        )
        data = fault.to_dict()
        assert data["actions"]["template"] == "timeout"
        assert data["metadata"]["k"] == 1


class TestFeedbackAndOutcome:
    def test_feedback_serialisation(self):
        feedback = Feedback(fault_id="f1", rating=4.0, critique="add a retry", accept=False)
        data = feedback.to_dict()
        assert data["rating"] == 4.0
        assert data["critique"] == "add a retry"

    def test_outcome_exposed_failure(self):
        outcome = InjectionOutcome(fault_id="f1", activated=True, failure_mode=FailureMode.CRASH)
        assert outcome.exposed_failure
        benign = InjectionOutcome(fault_id="f2", activated=False, failure_mode=FailureMode.NO_FAILURE)
        assert not benign.exposed_failure


class TestStableFaultId:
    def test_deterministic(self):
        assert stable_fault_id("desc", "code") == stable_fault_id("desc", "code")

    def test_differs_by_description_code_and_salt(self):
        base = stable_fault_id("desc", "code")
        assert stable_fault_id("other", "code") != base
        assert stable_fault_id("desc", "other") != base
        assert stable_fault_id("desc", "code", salt="1") != base

    def test_prefix(self):
        assert stable_fault_id("d", None).startswith("fault-")


class TestSummariseOutcomes:
    def test_empty(self):
        summary = summarise_outcomes([])
        assert summary["total"] == 0
        assert summary["failure_rate"] == 0.0

    def test_counts_by_mode(self):
        outcomes = [
            InjectionOutcome(fault_id="a", activated=True, failure_mode=FailureMode.CRASH),
            InjectionOutcome(fault_id="b", activated=True, failure_mode=FailureMode.CRASH),
            InjectionOutcome(fault_id="c", activated=False, failure_mode=FailureMode.NO_FAILURE),
        ]
        summary = summarise_outcomes(outcomes)
        assert summary["total"] == 3
        assert summary["by_failure_mode"]["crash"] == 2
        assert summary["activation_rate"] == pytest.approx(2 / 3)
        assert summary["failure_rate"] == pytest.approx(2 / 3)
