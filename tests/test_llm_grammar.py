"""Tests for grammar-constrained rendering of decision vectors into code."""

from __future__ import annotations

import ast

import pytest

from repro.llm import CodeGrammar, DecisionVector, reference_decisions
from repro.llm.decisions import DECISION_SLOTS
from repro.nlp import PromptBuilder
from repro.types import FaultType


@pytest.fixture()
def grammar():
    return CodeGrammar()


def decisions_for(template, trigger="always", handling="unhandled", placement="wrap_body", severity="medium"):
    return DecisionVector(
        template=template, trigger=trigger, handling=handling, placement=placement, severity=severity
    )


class TestScenarioTemplates:
    def test_timeout_unhandled_matches_running_example_shape(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("timeout"))
        assert "raise TimeoutError" in rendered.function_source
        assert rendered.function_source.startswith("def process_transaction")
        ast.parse(rendered.function_source)
        assert rendered.module_source is not None
        ast.parse(rendered.module_source)

    def test_retry_handling_adds_retry_loop(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("timeout", handling="retry"))
        assert "retry" in rendered.function_source.lower()
        assert "for _attempt in range(" in rendered.function_source

    def test_logged_only_mentions_missing_handling(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("timeout", handling="logged_only"))
        assert "Missing exception handling logic" in rendered.function_source

    def test_fallback_returns_default(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("network_failure", handling="fallback"))
        assert "return None" in rendered.function_source

    def test_reraise_keeps_raise(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("disk_failure", handling="reraise"))
        body_after_except = rendered.function_source.split("except", 1)[1]
        assert "raise" in body_after_except

    def test_probabilistic_trigger_uses_random(self, grammar, extractor, prompt_builder, sample_module):
        spec = extractor.extract_from_text(
            "the charge call fails with a timeout 30% of the time", sample_module
        )
        prompt = prompt_builder.build(spec, None)
        rendered = grammar.render(prompt, decisions_for("timeout", trigger="probabilistic"))
        assert "random.random() < 0.3" in rendered.function_source

    def test_nth_call_trigger_counts_calls(self, grammar, extractor, prompt_builder):
        spec = extractor.extract_from_text("every 3rd call to the gateway should time out")
        prompt = prompt_builder.build(spec, None)
        rendered = grammar.render(prompt, decisions_for("timeout", trigger="on_nth_call"))
        assert "_injected_call_counts" in rendered.function_source
        assert "% 3 == 0" in rendered.function_source

    def test_conditional_trigger_keeps_condition_comment(self, grammar, extractor, prompt_builder):
        spec = extractor.extract_from_text("raise an error when the cart is empty")
        prompt = prompt_builder.build(spec, None)
        rendered = grammar.render(prompt, decisions_for("exception", trigger="conditional"))
        assert "when" in rendered.function_source

    def test_delay_template_sleeps(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("delay", placement="body_start"))
        assert "time.sleep(" in rendered.function_source

    def test_memory_leak_template(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("memory_leak", placement="body_start"))
        assert "_injected_leak" in rendered.function_source

    def test_deadlock_template_double_acquires(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("deadlock"))
        assert rendered.function_source.count("_injected_lock.acquire()") == 2

    def test_stub_generated_when_no_code_supplied(self, grammar, extractor, prompt_builder):
        spec = extractor.extract_from_text("simulate a timeout in the payment gateway")
        prompt = prompt_builder.build(spec, None)
        rendered = grammar.render(prompt, decisions_for("timeout"))
        assert rendered.module_source is None
        ast.parse(rendered.function_source)

    def test_severity_scales_delay(self, grammar, sample_prompt):
        low = grammar.render(sample_prompt, decisions_for("delay", severity="low", placement="body_start"))
        high = grammar.render(sample_prompt, decisions_for("delay", severity="high", placement="body_start"))

        def sleep_value(source):
            marker = "time.sleep("
            fragment = source[source.index(marker) + len(marker):]
            return float(fragment.split(")")[0])

        assert sleep_value(high.function_source) > sleep_value(low.function_source)


class TestMutationTemplates:
    def test_wrong_condition_uses_operator_on_target(
        self, grammar, extractor, analyzer, prompt_builder, sample_module
    ):
        text = "negate the empty-cart condition in the validate function"
        spec = extractor.extract_from_text(text, sample_module)
        context = analyzer.analyze(sample_module)
        analyzer.select_function(context, text, hint="validate")
        prompt = prompt_builder.build(spec, context)
        rendered = grammar.render(prompt, decisions_for("wrong_condition"))
        assert rendered.operator in ("negate_condition", "relax_comparison")
        assert rendered.module_source is not None
        assert rendered.module_source != sample_module

    def test_mutation_template_falls_back_when_function_lacks_structure(self, grammar, sample_prompt):
        # process_transaction has no if/comparison, so the wrong_condition
        # template cannot be realised structurally and is approximated.
        rendered = grammar.render(sample_prompt, decisions_for("wrong_condition"))
        assert rendered.operator is None
        assert any("Approximated" in note for note in rendered.notes)

    def test_missing_call_removes_a_call(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("missing_call"))
        assert rendered.operator == "remove_call"

    def test_race_condition_prefers_lock_removal(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("race_condition"))
        assert rendered.operator in ("remove_lock", "split_atomic_update")

    def test_mutation_without_code_falls_back_to_scenario(self, grammar, extractor, prompt_builder):
        spec = extractor.extract_from_text("introduce an off-by-one error in the pagination loop")
        prompt = prompt_builder.build(spec, None)
        rendered = grammar.render(prompt, decisions_for("off_by_one"))
        assert rendered.operator is None
        assert "raise" in rendered.function_source
        assert any("Approximated" in note or "off by one" in note for note in rendered.notes)

    def test_every_template_renders_valid_python(self, grammar, sample_prompt):
        for template in DECISION_SLOTS["template"]:
            rendered = grammar.render(sample_prompt, decisions_for(template))
            ast.parse(rendered.function_source)
            if rendered.module_source is not None:
                ast.parse(rendered.module_source)

    def test_notes_are_always_present(self, grammar, sample_prompt):
        for template in ("timeout", "memory_leak", "wrong_condition", "data_corruption"):
            rendered = grammar.render(sample_prompt, decisions_for(template))
            assert rendered.notes


class TestPlacement:
    def test_before_return_places_fault_before_return(self, grammar, extractor, prompt_builder, analyzer, sample_module):
        text = "make compute_total fail with an unhandled exception"
        spec = extractor.extract_from_text(text, sample_module)
        context = analyzer.analyze(sample_module)
        analyzer.select_function(context, text, hint="compute_total")
        prompt = prompt_builder.build(spec, context)
        rendered = grammar.render(prompt, decisions_for("exception", placement="before_return"))
        lines = rendered.function_source.splitlines()
        raise_index = next(i for i, line in enumerate(lines) if "raise" in line)
        return_index = next(i for i, line in enumerate(lines) if line.strip().startswith("return"))
        assert raise_index < return_index

    def test_original_body_is_preserved_for_body_start(self, grammar, sample_prompt):
        rendered = grammar.render(sample_prompt, decisions_for("delay", placement="body_start"))
        assert "compute_total(cart)" in rendered.function_source
