"""Property-based tests for the injection substrate.

Invariants checked with hypothesis:

* every operator, applied at any point it reports, yields syntactically valid
  Python that differs from the original;
* patches always revert cleanly (the original text is retained verbatim);
* the fault-load DSL round-trips through JSON for arbitrary entries.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings, strategies as st

from repro.injection import FaultLoad, all_operators, get_operator, operator_names
from repro.rng import SeededRNG

#: A family of small but structurally varied modules for property tests.
_MODULE_TEMPLATES = [
    """
def alpha(items, threshold):
    total = 0
    for index in range(len(items)):
        if items[index] > threshold:
            total = total + items[index]
    return total
""",
    """
import threading

_lock = threading.Lock()

def beta(store, key, value, attempts=3):
    if key is None:
        raise ValueError("missing key")
    with _lock:
        store[key] = value
    return store[key]
""",
    """
def gamma(connection, payload):
    try:
        connection.send(payload)
    except ConnectionError as error:
        print("send failed", error)
        raise
    finally:
        connection.close()
    return True
""",
    """
def delta(n):
    result = 1
    while n > 1:
        result = result * n
        n = n - 1
    return result
""",
    """
def epsilon(records):
    cleaned = []
    for record in records:
        if record.get("valid"):
            cleaned.append(record["value"] * 2)
    write_output(cleaned)
    return cleaned

def write_output(data):
    return len(data)
""",
]


@st.composite
def operator_and_module(draw):
    module = draw(st.sampled_from(_MODULE_TEMPLATES))
    operator = draw(st.sampled_from(operator_names()))
    return operator, module


class TestOperatorInvariants:
    @given(operator_and_module(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_applied_mutants_are_valid_and_different(self, pair, point_choice):
        operator_name, module = pair
        operator = get_operator(operator_name)
        points = operator.find_points(module)
        if not points:
            return  # operator simply does not apply to this module
        point = points[point_choice % len(points)]
        applied = operator.apply(module, point, rng=SeededRNG(3))
        ast.parse(applied.patch.mutated)
        assert applied.patch.mutated != module
        assert applied.patch.original == module
        assert applied.description

    @given(operator_and_module())
    @settings(max_examples=60, deadline=None)
    def test_find_points_is_idempotent(self, pair):
        operator_name, module = pair
        operator = get_operator(operator_name)
        first = operator.find_points(module)
        second = operator.find_points(module)
        assert [p.to_dict() for p in first] == [p.to_dict() for p in second]

    @given(st.sampled_from(_MODULE_TEMPLATES))
    @settings(max_examples=20, deadline=None)
    def test_scanning_never_mutates_the_source(self, module):
        before = module
        for operator in all_operators():
            operator.find_points(module)
        assert module == before


class TestFaultLoadProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(operator_names()),
                st.sampled_from(["*", "alpha", "beta*", "process_*"]),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_faultload_json_round_trip(self, entries):
        load = FaultLoad(name="prop")
        for operator, pattern, max_points in entries:
            load.add(operator, pattern, max_points=max_points)
        restored = FaultLoad.from_json(load.to_json())
        assert len(restored) == len(load)
        assert [e.operator for e in restored] == [e.operator for e in load]
        assert [e.max_points for e in restored] == [e.max_points for e in load]
