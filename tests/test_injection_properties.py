"""Property-based tests for the injection substrate.

Invariants checked with hypothesis:

* every operator, applied at any point it reports, yields syntactically valid
  Python that differs from the original;
* patches always revert cleanly (the original text is retained verbatim);
* the fault-load DSL round-trips through JSON for arbitrary entries;
* every decision the compiled-grammar decode emits is accepted by the
  interpreted grammar's validator, and masked decision heads never leak a
  zero-probability (masked-out) value.
"""

from __future__ import annotations

import ast
import functools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ModelConfig
from repro.injection import FaultLoad, all_operators, get_operator, operator_names
from repro.llm import CodeGrammar, DecisionAutomaton, FaultGenerator, constraint_slots
from repro.llm.compiled_grammar import DecodePlan
from repro.llm.decisions import DECISION_SLOTS
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.rng import SeededRNG
from repro.targets import all_targets
from repro.types import FaultDescription

#: A family of small but structurally varied modules for property tests.
_MODULE_TEMPLATES = [
    """
def alpha(items, threshold):
    total = 0
    for index in range(len(items)):
        if items[index] > threshold:
            total = total + items[index]
    return total
""",
    """
import threading

_lock = threading.Lock()

def beta(store, key, value, attempts=3):
    if key is None:
        raise ValueError("missing key")
    with _lock:
        store[key] = value
    return store[key]
""",
    """
def gamma(connection, payload):
    try:
        connection.send(payload)
    except ConnectionError as error:
        print("send failed", error)
        raise
    finally:
        connection.close()
    return True
""",
    """
def delta(n):
    result = 1
    while n > 1:
        result = result * n
        n = n - 1
    return result
""",
    """
def epsilon(records):
    cleaned = []
    for record in records:
        if record.get("valid"):
            cleaned.append(record["value"] * 2)
    write_output(cleaned)
    return cleaned

def write_output(data):
    return len(data)
""",
]


@st.composite
def operator_and_module(draw):
    module = draw(st.sampled_from(_MODULE_TEMPLATES))
    operator = draw(st.sampled_from(operator_names()))
    return operator, module


class TestOperatorInvariants:
    @given(operator_and_module(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_applied_mutants_are_valid_and_different(self, pair, point_choice):
        operator_name, module = pair
        operator = get_operator(operator_name)
        points = operator.find_points(module)
        if not points:
            return  # operator simply does not apply to this module
        point = points[point_choice % len(points)]
        applied = operator.apply(module, point, rng=SeededRNG(3))
        ast.parse(applied.patch.mutated)
        assert applied.patch.mutated != module
        assert applied.patch.original == module
        assert applied.description

    @given(operator_and_module())
    @settings(max_examples=60, deadline=None)
    def test_find_points_is_idempotent(self, pair):
        operator_name, module = pair
        operator = get_operator(operator_name)
        first = operator.find_points(module)
        second = operator.find_points(module)
        assert [p.to_dict() for p in first] == [p.to_dict() for p in second]

    @given(st.sampled_from(_MODULE_TEMPLATES))
    @settings(max_examples=20, deadline=None)
    def test_scanning_never_mutates_the_source(self, module):
        before = module
        for operator in all_operators():
            operator.find_points(module)
        assert module == before


class TestFaultLoadProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(operator_names()),
                st.sampled_from(["*", "alpha", "beta*", "process_*"]),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_faultload_json_round_trip(self, entries):
        load = FaultLoad(name="prop")
        for operator, pattern, max_points in entries:
            load.add(operator, pattern, max_points=max_points)
        restored = FaultLoad.from_json(load.to_json())
        assert len(restored) == len(load)
        assert [e.operator for e in restored] == [e.operator for e in load]
        assert [e.max_points for e in restored] == [e.max_points for e in load]


_PROMPT_TEXTS = [
    "Inject a timeout in the database transaction handling with retry",
    "Introduce an off-by-one error in the loop processing orders",
    "Simulate a network failure when the payment service is unavailable",
    "Make the cache lookup intermittently fail every 3rd call",
    "Corrupt the response data with low severity",
]

_DIRECTIVE_CHOICES = [
    None,
    {"handling": "retry"},
    {"handling": "fallback", "severity": "high"},
    {"trigger": "intermittent"},
    {"fault_type": "delay", "wants_unhandled": True},
]


@functools.lru_cache(maxsize=1)
def _prompt_pool():
    """Prompts across every target × description × directive combination."""
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    prompts = []
    for target in all_targets():
        code = target.build_source()
        for text in _PROMPT_TEXTS:
            context = analyzer.analyze(code)
            spec = extractor.extract(FaultDescription(text=text, code=code), context=context)
            analyzer.select_function(context, text, hint=spec.target.function)
            for directives in _DIRECTIVE_CHOICES:
                prompts.append(builder.build(spec, context, directives))
    return prompts


class TestCompiledDecodeProperties:
    """Compiled-grammar decode invariants over randomized prompts and seeds."""

    @given(
        prompt_index=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        strategy=st.sampled_from(["greedy", "sample", "diverse"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_compiled_decisions_are_accepted_by_the_interpreted_grammar(
        self, prompt_index, seed, strategy
    ):
        pool = _prompt_pool()
        prompt = pool[prompt_index % len(pool)]
        generator = FaultGenerator(
            ModelConfig(compiled_decode=True), rng=SeededRNG(seed, namespace="generator")
        )
        if strategy == "diverse":
            candidates = generator.candidates(prompt, 3)
        else:
            candidates = [generator.generate(prompt, greedy=strategy == "greedy")]
        grammar = CodeGrammar()
        for candidate in candidates:
            assert grammar.accepts(prompt, candidate.decisions)

    @given(
        prompt_index=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        greedy=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_masked_heads_never_leak_invalid_decisions(self, prompt_index, seed, greedy):
        pool = _prompt_pool()
        prompt = pool[prompt_index % len(pool)]
        config = ModelConfig(compiled_decode=True)
        generator = FaultGenerator(config, rng=SeededRNG(seed, namespace="generator"))
        automaton = generator.compiler.compile(prompt)
        candidate = generator.generate(prompt, greedy=greedy)
        decisions = candidate.decisions.to_dict()
        for slot, values in DECISION_SLOTS.items():
            assert automaton.allows(slot, values.index(decisions[slot]))
        for slot, value in constraint_slots(prompt, config).items():
            assert decisions[slot] == value

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        valid_count=st.integers(min_value=2, max_value=4),
        temperature=st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_partial_masks_give_masked_entries_zero_probability(
        self, seed, valid_count, temperature
    ):
        # Partially-masked slots are compiled-only semantics (today's grammar
        # pins exactly one value), but the plan must still guarantee that a
        # masked-out decision has exactly zero selection probability.
        rng = np.random.default_rng(seed)
        size = len(DECISION_SLOTS["handling"])
        mask = np.zeros(size, dtype=bool)
        mask[rng.choice(size, size=valid_count, replace=False)] = True
        probs = rng.random(size)
        probs /= probs.sum()
        automaton = DecisionAutomaton(
            masks={"handling": mask}, partial_masks={"handling": mask}
        )
        plan = DecodePlan.for_sampling(
            {"handling": probs}, automaton, temperature, top_k=None, top_p=None
        )
        for uniform in rng.random(200):
            assert mask[plan.replay("handling", float(uniform))]
