"""Tests for the deterministic random number management."""

from __future__ import annotations

from repro.rng import SeededRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = SeededRNG(7).generator.random(5)
        second = SeededRNG(7).generator.random(5)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        assert list(SeededRNG(1).generator.random(5)) != list(SeededRNG(2).generator.random(5))

    def test_forks_are_independent_of_each_other(self):
        root = SeededRNG(3)
        a = root.fork("a").generator.random(3)
        b = root.fork("b").generator.random(3)
        assert list(a) != list(b)

    def test_fork_is_reproducible(self):
        assert list(SeededRNG(5).fork("x").generator.random(4)) == list(
            SeededRNG(5).fork("x").generator.random(4)
        )

    def test_adding_a_fork_does_not_perturb_existing_fork(self):
        root_one = SeededRNG(11)
        values_before = list(root_one.fork("worker").generator.random(3))
        root_two = SeededRNG(11)
        root_two.fork("other")  # extra consumer
        values_after = list(root_two.fork("worker").generator.random(3))
        assert values_before == values_after


class TestHelpers:
    def test_randint_range(self):
        rng = SeededRNG(13)
        values = [rng.randint(0, 5) for _ in range(200)]
        assert min(values) >= 0
        assert max(values) < 5

    def test_choice_with_probabilities(self):
        rng = SeededRNG(17)
        values = [rng.choice(["a", "b"], p=[1.0, 0.0]) for _ in range(10)]
        assert values == ["a"] * 10

    def test_shuffle_preserves_elements(self):
        rng = SeededRNG(19)
        items = list(range(20))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_uniform_bounds(self):
        rng = SeededRNG(23)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_bernoulli_extremes(self):
        rng = SeededRNG(29)
        assert not any(rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))
