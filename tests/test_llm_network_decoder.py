"""Tests for the policy network and decoding strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.llm import DECISION_SLOTS, Decoder, DecisionVector, FeatureEncoder, PolicyNetwork, reference_decisions
from repro.rng import SeededRNG


@pytest.fixture()
def encoded_prompt(sample_prompt):
    return FeatureEncoder().encode(sample_prompt)


@pytest.fixture()
def policy():
    return PolicyNetwork(ModelConfig())


class TestPolicyNetwork:
    def test_forward_produces_normalised_distributions(self, policy, encoded_prompt):
        result = policy.forward(encoded_prompt)
        for slot, values in DECISION_SLOTS.items():
            probs = result.probabilities[slot]
            assert probs.shape == (len(values),)
            assert np.all(probs >= 0)
            assert np.isclose(probs.sum(), 1.0)

    def test_wrong_feature_shape_rejected(self, policy):
        with pytest.raises(ModelError):
            policy.forward(np.zeros(3))

    def test_log_probability_matches_forward(self, policy, encoded_prompt, sample_prompt):
        decisions = reference_decisions(sample_prompt.spec)
        forward = policy.forward(encoded_prompt)
        assert policy.log_probability(encoded_prompt, decisions) == pytest.approx(
            forward.log_probability(decisions)
        )

    def test_supervised_updates_increase_target_likelihood(self, policy, encoded_prompt, sample_prompt):
        target = reference_decisions(sample_prompt.spec)
        before = policy.log_probability(encoded_prompt, target)
        for _ in range(20):
            forward = policy.forward(encoded_prompt)
            policy.apply_gradients(policy.backward(forward, target), learning_rate=0.2)
        after = policy.log_probability(encoded_prompt, target)
        assert after > before

    def test_policy_gradient_scale_sign_controls_direction(self, policy, encoded_prompt, sample_prompt):
        target = reference_decisions(sample_prompt.spec)
        before = policy.log_probability(encoded_prompt, target)
        # Negative scale == negative advantage: the decisions should become LESS likely.
        for _ in range(10):
            forward = policy.forward(encoded_prompt)
            policy.apply_gradients(policy.backward(forward, target, scale=-1.0), learning_rate=0.2)
        after = policy.log_probability(encoded_prompt, target)
        assert after < before

    def test_clone_is_independent(self, policy, encoded_prompt, sample_prompt):
        clone = policy.clone()
        target = reference_decisions(sample_prompt.spec)
        for _ in range(10):
            forward = policy.forward(encoded_prompt)
            policy.apply_gradients(policy.backward(forward, target))
        assert clone.log_probability(encoded_prompt, target) != pytest.approx(
            policy.log_probability(encoded_prompt, target)
        )

    def test_state_round_trip(self, policy, encoded_prompt, sample_prompt):
        target = reference_decisions(sample_prompt.spec)
        other = PolicyNetwork(ModelConfig())
        other.load_state(policy.state_dict())
        assert other.log_probability(encoded_prompt, target) == pytest.approx(
            policy.log_probability(encoded_prompt, target)
        )

    def test_load_state_dimension_mismatch(self, policy):
        other = PolicyNetwork(ModelConfig(hidden_dim=16))
        with pytest.raises(ModelError):
            policy.load_state(other.state_dict())

    def test_kl_divergence_zero_against_itself(self, policy, encoded_prompt):
        assert policy.kl_divergence(encoded_prompt, policy) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_after_training(self, policy, encoded_prompt, sample_prompt):
        reference = policy.clone()
        target = reference_decisions(sample_prompt.spec)
        for _ in range(15):
            forward = policy.forward(encoded_prompt)
            policy.apply_gradients(policy.backward(forward, target), learning_rate=0.3)
        assert policy.kl_divergence(encoded_prompt, reference) > 0.0

    def test_version_increments_on_update(self, policy, encoded_prompt, sample_prompt):
        target = reference_decisions(sample_prompt.spec)
        version = policy.version
        policy.apply_gradients(policy.backward(policy.forward(encoded_prompt), target))
        assert policy.version == version + 1


class TestDecoder:
    def make_distributions(self, policy, encoded_prompt):
        return policy.distributions(encoded_prompt)

    def test_greedy_picks_argmax(self, policy, encoded_prompt):
        distributions = self.make_distributions(policy, encoded_prompt)
        result = Decoder().greedy(distributions)
        for slot, values in DECISION_SLOTS.items():
            expected = values[int(np.argmax(distributions[slot]))]
            assert result.decisions.to_dict()[slot] == expected

    def test_greedy_is_deterministic(self, policy, encoded_prompt):
        distributions = self.make_distributions(policy, encoded_prompt)
        assert Decoder().greedy(distributions).decisions == Decoder().greedy(distributions).decisions

    def test_sampling_respects_one_hot_distributions(self, policy, encoded_prompt):
        distributions = {
            slot: np.eye(len(values))[0] for slot, values in DECISION_SLOTS.items()
        }
        result = Decoder(rng=SeededRNG(5)).sample(distributions)
        for slot, values in DECISION_SLOTS.items():
            assert result.decisions.to_dict()[slot] == values[0]

    def test_top_k_one_equals_greedy(self, policy, encoded_prompt):
        distributions = self.make_distributions(policy, encoded_prompt)
        sampled = Decoder(rng=SeededRNG(7)).sample(distributions, top_k=1)
        assert sampled.decisions == Decoder().greedy(distributions).decisions

    def test_top_p_truncation_excludes_tail(self, policy, encoded_prompt):
        decoder = Decoder(rng=SeededRNG(11))
        distributions = {slot: probs for slot, probs in self.make_distributions(policy, encoded_prompt).items()}
        for _ in range(20):
            result = decoder.sample(distributions, top_p=0.5)
            for slot, probs in distributions.items():
                chosen = result.decisions.to_dict()[slot]
                chosen_probability = probs[DECISION_SLOTS[slot].index(chosen)]
                assert chosen_probability >= np.min(probs)

    def test_logprob_uses_untruncated_distribution(self, policy, encoded_prompt):
        distributions = self.make_distributions(policy, encoded_prompt)
        result = Decoder(rng=SeededRNG(13)).sample(distributions, top_k=1)
        manual = sum(
            float(np.log(distributions[slot][DECISION_SLOTS[slot].index(value)] + 1e-12))
            for slot, value in result.decisions.to_dict().items()
        )
        assert result.logprob == pytest.approx(manual)

    def test_diverse_candidates_unique_and_counted(self, policy, encoded_prompt):
        distributions = self.make_distributions(policy, encoded_prompt)
        candidates = Decoder(rng=SeededRNG(17)).diverse_candidates(distributions, count=4)
        assert len(candidates) == 4
        assert candidates[0].strategy == "greedy"
        keys = {tuple(sorted(c.decisions.to_dict().items())) for c in candidates[:3]}
        assert len(keys) >= 2

    def test_invalid_temperature_rejected(self, policy, encoded_prompt):
        from repro.errors import GenerationError

        distributions = self.make_distributions(policy, encoded_prompt)
        with pytest.raises(GenerationError):
            Decoder().sample(distributions, temperature=0.0)
