"""Tests for generation prompt construction."""

from __future__ import annotations

from repro.nlp import PromptBuilder, entity_counts
from repro.types import FaultType


class TestPromptBuilder:
    def test_target_function_combines_class_and_function(self, sample_prompt):
        assert sample_prompt.target_function == "process_transaction"

    def test_features_include_spec_fields(self, sample_prompt):
        features = sample_prompt.to_features()
        assert features["fault_type"] == FaultType.TIMEOUT.value
        assert features["has_target_function"] is True
        assert features["code"]["has_code"] is True
        assert features["code"]["selected_has_try"] is True

    def test_features_without_context(self, extractor, prompt_builder):
        spec = extractor.extract_from_text("introduce a memory leak in the worker")
        prompt = prompt_builder.build(spec, None)
        assert prompt.to_features()["code"] == {"has_code": False}

    def test_to_text_mentions_description_and_entities(self, sample_prompt):
        text = sample_prompt.to_text()
        assert "Fault generation request" in text
        assert "process_transaction" in text
        assert "Recognised entities" in text
        assert "Target code" in text

    def test_refine_merges_directives(self, sample_prompt, prompt_builder):
        refined = prompt_builder.refine(sample_prompt, {"wants_retry": True})
        assert refined.feedback_directives["wants_retry"] is True
        again = prompt_builder.refine(refined, {"severity": "high"})
        assert again.feedback_directives == {"wants_retry": True, "severity": "high"}
        # The original prompt is untouched.
        assert sample_prompt.feedback_directives == {}

    def test_feedback_directives_appear_in_features(self, sample_prompt, prompt_builder):
        refined = prompt_builder.refine(sample_prompt, {"wants_retry": True})
        assert refined.to_features()["directives"]["wants_retry"] is True

    def test_entity_counts_cover_all_labels(self, sample_prompt):
        counts = entity_counts(sample_prompt.spec)
        assert counts["fault_keyword"] >= 1
        assert counts["function"] >= 1
        assert all(isinstance(value, int) for value in counts.values())
