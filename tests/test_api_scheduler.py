"""Scheduler semantics: FIFO dispatch, continuous batching, grouping, and
the submit/run_many/stream delivery surfaces."""

from __future__ import annotations

import threading

import pytest

from repro import FaultInjectionEngine, GenerateRequest, PipelineConfig
from repro.api import DatasetRequest, Response, Scheduler, Ticket
from repro.api.scheduler import ResponseHandle
from repro.config import EngineConfig
from repro.errors import EngineClosedError

DESCRIPTIONS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Silently corrupt the amount returned by the transfer function",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Raise an unexpected exception in deposit when the amount is small",
]


def _ticket(request) -> Ticket:
    return Ticket(request=request, handle=ResponseHandle(request.request_id or "t", request.kind))


def _resolve_all(tickets):
    for ticket in tickets:
        ticket.handle._resolve(
            Response(request_id=ticket.handle.request_id, kind=ticket.request.kind, status="ok")
        )


class TestSchedulerCoalescing:
    """Direct scheduler tests with controllable dispatch callbacks."""

    def test_contiguous_generate_requests_coalesce_into_one_batch(self):
        dispatched: list[list[str]] = []
        release = threading.Event()

        def dispatch_batch(tickets):
            if not dispatched:
                release.wait(timeout=10)
            dispatched.append([t.handle.request_id for t in tickets])
            _resolve_all(tickets)

        scheduler = Scheduler(
            dispatch_batch=dispatch_batch,
            dispatch_single=lambda t: _resolve_all([t]),
            max_batch_size=8,
            max_queue_delay_seconds=0.01,
        )
        first = _ticket(GenerateRequest(description="x", request_id="g0"))
        scheduler.submit(first)
        # While the dispatcher is blocked on g0's batch, five more requests
        # queue up; releasing it must coalesce all five into ONE batch.
        rest = [
            _ticket(GenerateRequest(description="x", request_id=f"g{i}")) for i in range(1, 6)
        ]
        for ticket in rest:
            scheduler.submit(ticket)
        release.set()
        for ticket in [first, *rest]:
            ticket.handle.result(timeout=10)
        scheduler.close()
        # The first dispatch may have raced a prefix of the burst, but the
        # rest coalesces into one batch: at most two dispatches, FIFO order.
        assert len(dispatched) <= 2
        assert [rid for batch in dispatched for rid in batch] == [f"g{i}" for i in range(6)]

    def test_max_batch_size_bounds_each_dispatch(self):
        dispatched: list[int] = []
        release = threading.Event()

        def dispatch_batch(tickets):
            if not dispatched:
                release.wait(timeout=10)
            dispatched.append(len(tickets))
            _resolve_all(tickets)

        scheduler = Scheduler(
            dispatch_batch=dispatch_batch,
            dispatch_single=lambda t: _resolve_all([t]),
            max_batch_size=3,
            max_queue_delay_seconds=0.01,
        )
        tickets = [
            _ticket(GenerateRequest(description="x", request_id=f"g{i}")) for i in range(7)
        ]
        scheduler.submit(tickets[0])
        for ticket in tickets[1:]:
            scheduler.submit(ticket)
        release.set()
        for ticket in tickets:
            ticket.handle.result(timeout=10)
        scheduler.close()
        assert max(dispatched) <= 3
        assert sum(dispatched) == 7

    def test_fifo_is_preserved_across_request_kinds(self):
        order: list[str] = []
        release = threading.Event()

        def dispatch_batch(tickets):
            if not order:
                release.wait(timeout=10)
            order.append("generate:" + ",".join(t.handle.request_id for t in tickets))
            _resolve_all(tickets)

        def dispatch_single(ticket):
            order.append(ticket.request.kind + ":" + ticket.handle.request_id)
            _resolve_all([ticket])

        scheduler = Scheduler(
            dispatch_batch=dispatch_batch,
            dispatch_single=dispatch_single,
            max_batch_size=8,
            max_queue_delay_seconds=0.01,
        )
        g0 = _ticket(GenerateRequest(description="x", request_id="g0"))
        scheduler.submit(g0)
        d0 = _ticket(DatasetRequest(request_id="d0"))
        g1 = _ticket(GenerateRequest(description="x", request_id="g1"))
        g2 = _ticket(GenerateRequest(description="x", request_id="g2"))
        for ticket in (d0, g1, g2):
            scheduler.submit(ticket)
        release.set()
        for ticket in (g0, d0, g1, g2):
            ticket.handle.result(timeout=10)
        scheduler.close()
        # The dataset ticket is a batching barrier: g1/g2 coalesce together
        # behind it, never around it.
        assert order == ["generate:g0", "dataset:d0", "generate:g1,g2"]

    def test_dispatcher_crash_resolves_stranded_handles(self):
        def dispatch_batch(tickets):
            raise RuntimeError("dispatcher exploded")

        scheduler = Scheduler(
            dispatch_batch=dispatch_batch,
            dispatch_single=lambda t: None,
            max_batch_size=4,
            max_queue_delay_seconds=0.0,
        )
        ticket = _ticket(GenerateRequest(description="x", request_id="g0"))
        scheduler.submit(ticket)
        response = ticket.handle.result(timeout=10)
        assert not response.ok
        assert response.error.type == "RuntimeError"
        # The dispatch thread survived the crash and serves the next ticket.
        follow_up = _ticket(GenerateRequest(description="x", request_id="g1"))
        scheduler.submit(follow_up)
        assert not follow_up.handle.result(timeout=10).ok
        scheduler.close()
        with pytest.raises(EngineClosedError):
            scheduler.submit(_ticket(GenerateRequest(description="x", request_id="g2")))

    def test_submit_after_close_is_rejected(self):
        scheduler = Scheduler(
            dispatch_batch=_resolve_all,
            dispatch_single=lambda t: _resolve_all([t]),
            max_batch_size=4,
            max_queue_delay_seconds=0.0,
        )
        scheduler.close()
        with pytest.raises(EngineClosedError):
            scheduler.submit(_ticket(GenerateRequest(description="x")))


class TestEngineBatchingBehaviour:
    def test_run_many_returns_responses_in_input_order(self):
        requests = [
            GenerateRequest(description=text, target="bank", request_id=f"order-{index}")
            for index, text in enumerate(DESCRIPTIONS)
        ]
        with FaultInjectionEngine() as engine:
            responses = engine.run_many(requests)
        assert [r.request_id for r in responses] == [f"order-{i}" for i in range(len(requests))]
        assert all(r.ok for r in responses)

    def test_run_many_coalesces_into_batched_forward_passes(self):
        config = PipelineConfig(engine=EngineConfig(max_queue_delay_seconds=0.2))
        requests = [GenerateRequest(description=text, target="bank") for text in DESCRIPTIONS]
        with FaultInjectionEngine(config) as engine:
            responses = engine.run_many(requests)
            stats = engine.serving_stats()
        generate_batches = [b for b in stats["batches"] if b["kind"] == "generate"]
        assert sum(b["size"] for b in generate_batches) == len(requests)
        # The whole burst coalesces into very few forward passes (one, unless
        # the dispatch thread won the race for an early ticket).
        assert len(generate_batches) <= 2
        assert max(r.payload.batch_size for r in responses) >= len(requests) - 1

    def test_mixed_targets_share_one_generate_batch(self):
        config = PipelineConfig(engine=EngineConfig(max_queue_delay_seconds=0.2))
        requests = [
            GenerateRequest(description=DESCRIPTIONS[0], target="bank", request_id="a"),
            GenerateRequest(
                description="Simulate a timeout in the put function", target="kvstore", request_id="b"
            ),
        ]
        with FaultInjectionEngine(config) as engine:
            responses = engine.run_many(requests)
            stats = engine.serving_stats()
        assert all(r.ok for r in responses)
        generate_batches = [b for b in stats["batches"] if b["kind"] == "generate"]
        assert any(set(b["targets"]) == {"bank", "kvstore"} for b in generate_batches) or len(
            generate_batches
        ) == 2

    def test_stream_yields_every_response_as_it_completes(self):
        requests = [
            GenerateRequest(description=text, target="bank", request_id=f"s-{index}")
            for index, text in enumerate(DESCRIPTIONS[:4])
        ]
        with FaultInjectionEngine() as engine:
            seen = [response.request_id for response in engine.stream(requests)]
        assert sorted(seen) == sorted(f"s-{i}" for i in range(4))

    def test_submit_returns_immediately_with_a_live_handle(self):
        with FaultInjectionEngine() as engine:
            handle = engine.submit(GenerateRequest(description=DESCRIPTIONS[0], target="bank"))
            response = handle.result(timeout=30)
            assert handle.done()
            assert response.ok
            assert response.kind == "generate"
            assert response.timings.total_seconds >= 0.0
