"""Tests for memory-bounded batch execution across the three heavy workloads.

Covers the ``ExecutionConfig.batch_size`` chunking contract (identical
results, bounded in-flight tasks), pooled dataset generation determinism
against the serial path, and RLHF batch-scoring equivalence.
"""

from __future__ import annotations

import pytest

from repro.config import DatasetConfig, ExecutionConfig, IntegrationConfig, ModelConfig, RLHFConfig
from repro.dataset import DatasetGenerator
from repro.errors import ExperimentError, SandboxError
from repro.injection import FaultLoad, ProgrammableInjector
from repro.integration import ExperimentRunner, SandboxRunner
from repro.llm import FaultGenerator
from repro.rlhf import RLHFTrainer, SimulatedTester
from repro.rlhf import tester_pool as make_tester_pool  # aliased: pytest collects `test*` names
from repro.targets import get_target


@pytest.fixture()
def bank_source() -> str:
    return get_target("bank").build_source()


@pytest.fixture()
def bank_faults(bank_source):
    load = (
        FaultLoad(name="chunking")
        .add("negate_condition", "*", max_points=3)
        .add("wrong_return_value", "*", max_points=3)
    )
    return ProgrammableInjector().inject(bank_source, load)


def _observation_keys(observations):
    return [
        (o.completed, o.timed_out, o.harness_error, o.result.metrics if o.result else None)
        for o in observations
    ]


class TestRunBatchChunking:
    def test_chunked_results_identical_to_unchunked(self, bank_source):
        with SandboxRunner(execution=ExecutionConfig(batch_size=64)) as runner:
            unchunked = runner.run_batch("bank", [bank_source] * 5, seed=7, mode="inprocess")
            chunked = runner.run_batch(
                "bank", [bank_source] * 5, seed=7, mode="inprocess", batch_size=2
            )
        assert _observation_keys(chunked) == _observation_keys(unchunked)

    def test_peak_in_flight_tasks_bounded_by_batch_size(self, bank_source, monkeypatch):
        chunk_sizes: list[int] = []
        original = SandboxRunner._dispatch_chunk

        def recording(self, target_name, module_sources, *args, **kwargs):
            chunk_sizes.append(len(module_sources))
            return original(self, target_name, module_sources, *args, **kwargs)

        monkeypatch.setattr(SandboxRunner, "_dispatch_chunk", recording)
        with SandboxRunner(execution=ExecutionConfig(batch_size=3)) as runner:
            observations = runner.run_batch("bank", [bank_source] * 8, seed=1, mode="inprocess")
        assert len(observations) == 8
        assert chunk_sizes == [3, 3, 2]
        assert max(chunk_sizes) <= 3

    def test_config_batch_size_is_the_default_chunk(self, bank_source, monkeypatch):
        chunk_sizes: list[int] = []
        original = SandboxRunner._dispatch_chunk

        def recording(self, target_name, module_sources, *args, **kwargs):
            chunk_sizes.append(len(module_sources))
            return original(self, target_name, module_sources, *args, **kwargs)

        monkeypatch.setattr(SandboxRunner, "_dispatch_chunk", recording)
        with SandboxRunner(execution=ExecutionConfig(batch_size=4)) as runner:
            runner.run_batch("bank", [bank_source] * 6, seed=1, mode="inprocess")
        assert chunk_sizes == [4, 2]

    def test_invalid_batch_size_rejected(self, bank_source):
        with SandboxRunner() as runner:
            with pytest.raises(SandboxError):
                runner.run_batch("bank", [bank_source], mode="inprocess", batch_size=0)

    def test_run_many_chunks_are_bounded(self, bank_faults, monkeypatch):
        batch_lengths: list[int] = []
        original = SandboxRunner.run_batch

        def recording(self, target_name, module_sources, *args, **kwargs):
            batch_lengths.append(len(module_sources))
            return original(self, target_name, module_sources, *args, **kwargs)

        monkeypatch.setattr(SandboxRunner, "run_batch", recording)
        runner = ExperimentRunner("bank", execution=ExecutionConfig(batch_size=2))
        batch = runner.run_many(bank_faults, mode="inprocess")
        assert len(batch) == len(bank_faults)
        assert max(batch_lengths) <= 2

    def test_run_many_chunked_matches_unchunked(self, bank_faults):
        config = IntegrationConfig(test_timeout_seconds=5.0)
        unchunked = ExperimentRunner(
            "bank", config=config, execution=ExecutionConfig(batch_size=64)
        ).run_many(bank_faults, mode="inprocess")
        chunked = ExperimentRunner(
            "bank", config=config, execution=ExecutionConfig(batch_size=2)
        ).run_many(bank_faults, mode="inprocess")

        def keys(batch):
            return [
                (o.fault_id, o.activated, o.failure_mode.value, o.tests_failed, o.details["reason"])
                for o in batch.outcomes
            ]

        assert keys(chunked) == keys(unchunked)

    def test_run_many_rejects_bad_batch_size(self, bank_faults):
        runner = ExperimentRunner("bank")
        with pytest.raises(ExperimentError):
            runner.run_many(bank_faults, mode="inprocess", batch_size=0)

    def test_run_many_batch_size_override_beats_config(self, bank_faults, monkeypatch):
        # A per-call override larger than the config value must reach the
        # sandbox submissions, not be silently re-chunked by the config.
        batch_lengths: list[int] = []
        original = SandboxRunner._dispatch_chunk

        def recording(self, target_name, module_sources, *args, **kwargs):
            batch_lengths.append(len(module_sources))
            return original(self, target_name, module_sources, *args, **kwargs)

        monkeypatch.setattr(SandboxRunner, "_dispatch_chunk", recording)
        runner = ExperimentRunner("bank", execution=ExecutionConfig(batch_size=1))
        batch = runner.run_many(bank_faults, mode="inprocess", batch_size=len(bank_faults))
        assert len(batch) == len(bank_faults)
        assert batch_lengths == [len(bank_faults)]


class TestPooledDatasetGeneration:
    def _records(self, execution: ExecutionConfig, validate: bool = True):
        config = DatasetConfig(samples_per_target=6, validate_candidates=validate)
        with DatasetGenerator(config, execution=execution) as generator:
            dataset = generator.generate([get_target("bank")])
            stats = generator.stats.to_dict()
        return [record.to_dict() for record in dataset], stats

    def test_validated_generation_matches_unvalidated_when_all_load(self):
        plain, _ = self._records(ExecutionConfig(default_mode="inprocess"), validate=False)
        validated, stats = self._records(ExecutionConfig(default_mode="inprocess"))
        assert validated == plain
        assert stats["batches"] == [
            {"target": "bank", "candidates": 6, "kept": 6, "discarded": 0, "mode": "subprocess"}
        ]

    @pytest.mark.pool
    def test_pooled_generation_is_byte_identical_to_serial(self):
        serial, serial_stats = self._records(
            ExecutionConfig(default_mode="subprocess", max_workers=1)
        )
        pooled, pooled_stats = self._records(
            ExecutionConfig(default_mode="pool", max_workers=2)
        )
        assert pooled == serial
        assert pooled_stats["validated"] == serial_stats["validated"]

    def test_validation_never_runs_mutants_in_process(self, monkeypatch):
        # Arbitrary mutants can hang (e.g. remove_assignment inside a while
        # loop) and inprocess mode has no timeout, so validation promotes.
        config = DatasetConfig(samples_per_target=3, validate_candidates=True)
        generator = DatasetGenerator(config, execution=ExecutionConfig(default_mode="inprocess"))
        seen_modes: list[str] = []
        run_batch = SandboxRunner.run_batch

        def recording(self, target_name, module_sources, *args, **kwargs):
            seen_modes.append(kwargs.get("mode"))
            return run_batch(self, target_name, module_sources, *args, **kwargs)

        monkeypatch.setattr(SandboxRunner, "run_batch", recording)
        with generator:
            dataset = generator.generate([get_target("bank")])
        assert len(dataset) == 3
        assert seen_modes == ["subprocess"]
        assert generator.stats.batches[0]["mode"] == "subprocess"

    def test_unloadable_candidates_are_discarded(self, monkeypatch):
        config = DatasetConfig(samples_per_target=4, validate_candidates=True)
        generator = DatasetGenerator(config, execution=ExecutionConfig(default_mode="subprocess"))
        original = DatasetGenerator._candidates_for_target

        def sabotage(self, source):
            candidates = original(self, source)
            from dataclasses import replace

            broken = replace(
                candidates[0],
                patch=replace(candidates[0].patch, mutated="raise RuntimeError('boom')\n"),
            )
            return [broken] + candidates[1:]

        monkeypatch.setattr(DatasetGenerator, "_candidates_for_target", sabotage)
        with generator:
            dataset = generator.generate([get_target("bank")])
        assert len(dataset) == 3
        assert generator.stats.discarded == 1
        assert generator.stats.batches[0]["kept"] == 3


class TestRLHFBatchScoring:
    @pytest.fixture()
    def prompt(self, sample_prompt):
        return sample_prompt

    def test_review_batch_matches_serial_reviews(self, prompt, fault_generator):
        tester = SimulatedTester()
        candidates = fault_generator.candidates(prompt, count=4)
        serial = [tester.review(prompt.spec, candidate) for candidate in candidates]
        batched = tester.review_batch(prompt.spec, candidates)
        assert [f.to_dict() for f in batched] == [f.to_dict() for f in serial]

    @pytest.mark.pool
    def test_executed_batch_matches_serial_execution(self, prompt, fault_generator):
        tester = SimulatedTester()
        candidates = fault_generator.candidates(prompt, count=3)
        config = IntegrationConfig(test_timeout_seconds=5.0, workload_iterations=10)
        serial_runner = ExperimentRunner("ecommerce", config=config)
        serial = [
            tester.review_executed(
                prompt.spec, c, serial_runner.run_generated(c.fault, mode="inprocess")
            )
            for c in candidates
        ]
        pooled_runner = ExperimentRunner(
            "ecommerce", config=config, execution=ExecutionConfig(max_workers=2)
        )
        pooled = tester.review_batch(prompt.spec, candidates, runner=pooled_runner, mode="pool")
        assert [f.to_dict() for f in pooled] == [f.to_dict() for f in serial]

    def test_execution_evidence_only_lowers_ratings(self, prompt, fault_generator):
        tester = SimulatedTester()
        candidates = fault_generator.candidates(prompt, count=3)
        config = IntegrationConfig(test_timeout_seconds=5.0, workload_iterations=10)
        runner = ExperimentRunner("ecommerce", config=config)
        executed = tester.review_batch(prompt.spec, candidates, runner=runner, mode="inprocess")
        pure = tester.review_batch(prompt.spec, candidates)
        for with_evidence, without in zip(executed, pure):
            assert with_evidence.rating <= without.rating
            assert with_evidence.fault_id == without.fault_id

    def test_run_rlhf_promotes_inprocess_default_to_subprocess(self, prompt, monkeypatch):
        import repro.api.engine as engine_mod
        from repro import NeuralFaultInjector
        from repro.rlhf import RLHFReport

        captured = {}

        class SpyTrainer:
            def __init__(self, generator, testers, config=None, runner=None, execution_mode=None):
                captured["mode"] = execution_mode

            def run(self, prompts):
                return RLHFReport()

        monkeypatch.setattr(engine_mod, "RLHFTrainer", SpyTrainer)
        with NeuralFaultInjector() as injector:   # default execution mode is inprocess
            injector.run_rlhf([prompt], target="bank")
            assert captured["mode"] == "subprocess"
            injector.run_rlhf([prompt], target="bank", mode="inprocess")  # explicit opt-in
            assert captured["mode"] == "inprocess"

    def test_trainer_with_runner_produces_a_full_report(self, prompt):
        generator = FaultGenerator(ModelConfig())
        config = IntegrationConfig(test_timeout_seconds=5.0, workload_iterations=10)
        runner = ExperimentRunner("ecommerce", config=config)
        trainer = RLHFTrainer(
            generator,
            make_tester_pool(seed=5),
            config=RLHFConfig(iterations=1, candidates_per_iteration=2),
            runner=runner,
            execution_mode="inprocess",
        )
        report = trainer.run([prompt])
        assert len(report.iterations) == 1
        assert 0.0 <= report.iterations[0].mean_rating <= 5.0
