"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

DESCRIPTION = "Simulate a timeout in the transfer function causing an unhandled exception"


class TestGenerateCommand:
    def test_generate_prints_a_fault_summary(self, capsys):
        exit_code = main(["generate", "--target", "bank", "--description", DESCRIPTION])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fault fault-" in captured.out
        assert "def transfer" in captured.out

    def test_generate_json_prints_the_response_envelope(self, capsys):
        exit_code = main(
            ["generate", "--target", "bank", "--description", DESCRIPTION, "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        envelope = json.loads(captured.out)
        assert envelope["status"] == "ok"
        assert envelope["kind"] == "generate"
        assert envelope["schema_version"] == "1.0"
        assert envelope["payload"]["fault"]["fault_id"].startswith("fault-")

    def test_generate_with_code_file(self, tmp_path, capsys):
        code = "def charge(amount):\n    return {'charged': amount}\n"
        code_file = tmp_path / "module.py"
        code_file.write_text(code)
        exit_code = main(
            [
                "generate",
                "--description",
                "Raise an unexpected exception in the charge function",
                "--code-file",
                str(code_file),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "def charge" in captured.out

    def test_invalid_request_exits_with_code_two(self, capsys):
        exit_code = main(["generate", "--description", "   "])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "invalid request" in captured.err


class TestDatasetCommand:
    def test_dataset_reports_record_count(self, capsys):
        exit_code = main(["dataset", "--target", "bank", "--samples", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "3 records" in captured.out

    def test_dataset_streams_to_jsonl(self, tmp_path, capsys):
        destination = tmp_path / "records.jsonl"
        exit_code = main(
            ["dataset", "--target", "bank", "--samples", "3", "--jsonl", str(destination)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert destination.exists()
        assert str(destination) in captured.out
        assert len(destination.read_text().splitlines()) == 3


class TestCampaignCommand:
    @pytest.mark.pool
    def test_campaign_summarises_each_technique(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--target",
                "bank",
                "--scenario",
                DESCRIPTION,
                "--scenario",
                "Silently corrupt the amount returned by the transfer function",
                "--budget",
                "2",
                "--mode",
                "inprocess",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "neural" in captured.out
        assert "predefined-model" in captured.out
        assert "random" in captured.out

    def test_unknown_technique_is_rejected(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--target",
                "bank",
                "--scenario",
                DESCRIPTION,
                "--technique",
                "llm-magic",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown techniques" in captured.err


class TestDistributedFlags:
    def test_serve_accepts_max_queue_depth(self):
        args = build_parser().parse_args(["serve", "--max-queue-depth", "7"])
        assert args.max_queue_depth == 7
        assert build_parser().parse_args(["serve"]).max_queue_depth is None

    def test_worker_flags_parse(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "127.0.0.1:7001", "--max-workers", "2", "--worker-id", "w9"]
        )
        assert args.connect == "127.0.0.1:7001"
        assert args.max_workers == 2
        assert args.worker_id == "w9"

    def test_worker_requires_connect(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])
        capsys.readouterr()

    def test_launch_workers_flags_parse(self):
        args = build_parser().parse_args(
            ["launch-workers", "-n", "5", "--connect", "127.0.0.1:7001", "--max-workers", "2"]
        )
        assert args.workers == 5
        assert args.connect == "127.0.0.1:7001"
        assert args.max_workers == 2
        assert build_parser().parse_args(["launch-workers", "--connect", "h:1"]).workers == 4

    def test_help_text_mirrors_chaos_flag_style(self, capsys):
        for command in ("worker", "launch-workers"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--help"])
            text = capsys.readouterr().out
            assert "--connect HOST:PORT" in text
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        text = capsys.readouterr().out
        assert "--max-queue-depth N" in text
        assert "429" in text and "admission control" in text

    def test_worker_with_bad_address_exits_with_code_two(self, capsys):
        exit_code = main(["worker", "--connect", "not-an-address"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "worker failed" in captured.err

    def test_launch_workers_with_bad_address_exits_with_code_two(self, capsys):
        exit_code = main(["launch-workers", "--connect", "host:", "-n", "1"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot launch workers" in captured.err


class TestServeCommand:
    def test_sharding_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--shards", "4", "--shard-queue-depth", "16"]
        )
        assert args.shards == 4
        assert args.shard_queue_depth == 16
        # Omitted flags stay None so ServerConfig.from_args keeps base values.
        defaults = build_parser().parse_args(["serve"])
        assert defaults.shards is None and defaults.shard_queue_depth is None

    def test_serve_help_documents_sharding(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        text = capsys.readouterr().out
        assert "--shards N" in text
        assert "--shard-queue-depth N" in text
        assert "consistent-hash" in text

    def test_invalid_shards_flag_exits_with_code_two(self, capsys):
        exit_code = main(["serve", "--port", "0", "--shards", "0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "shards must be positive" in captured.err

    def test_bind_failure_exits_with_code_two(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            exit_code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot start server" in captured.err
