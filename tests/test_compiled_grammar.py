"""Differential tests: compiled grammar decode vs the interpreted oracle.

The compiled path (automaton masks + jump-forward + CDF replay) must be
observationally indistinguishable from the interpreted constrained-decoding
path: byte-identical rendered faults and an identical decoder RNG stream for
every target and every decoding strategy.  The interpreted path is never
modified by the compiled-decode feature, so it serves as the oracle here.
"""

from __future__ import annotations

import pytest

from repro.config import ModelConfig
from repro.llm import (
    DecisionAutomaton,
    FaultGenerator,
    GrammarCompiler,
    constraint_slots,
)
from repro.llm.compiled_grammar import DecodePlan
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.rng import SeededRNG
from repro.targets import all_targets
from repro.types import FaultDescription

DESCRIPTIONS = [
    "Inject a timeout in the database transaction handling with retry",
    "Introduce an off-by-one error in the loop processing orders",
    "Simulate a network failure when the payment service is unavailable",
    "Make the cache lookup intermittently fail every 3rd call",
]


def build_prompts():
    """One prompt per (target, description) across all four targets."""
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    prompts = []
    for target in all_targets():
        code = target.build_source()
        for text in DESCRIPTIONS:
            context = analyzer.analyze(code)
            spec = extractor.extract(FaultDescription(text=text, code=code), context=context)
            analyzer.select_function(context, text, hint=spec.target.function)
            prompts.append(builder.build(spec, context))
    return prompts


@pytest.fixture(scope="module")
def prompts():
    return build_prompts()


def make_generator(compiled: bool, seed: int = 11) -> FaultGenerator:
    config = ModelConfig(compiled_decode=compiled)
    return FaultGenerator(config, rng=SeededRNG(seed, namespace="generator"))


def rng_state(generator: FaultGenerator):
    return generator.decoder._rng.generator.bit_generator.state


def assert_same_candidate(a, b):
    assert a.decisions == b.decisions
    assert a.fault.fault_id == b.fault.fault_id
    assert a.fault.code == b.fault.code
    assert a.fault.metadata == b.fault.metadata
    assert a.logprob == b.logprob


class TestDifferentialEquivalence:
    """Compiled output is byte-identical to interpreted on every target."""

    def test_greedy_matches_and_consumes_no_rng(self, prompts):
        interpreted, compiled = make_generator(False), make_generator(True)
        before = rng_state(compiled)
        for prompt in prompts:
            assert_same_candidate(
                interpreted.generate(prompt, greedy=True),
                compiled.generate(prompt, greedy=True),
            )
        assert rng_state(compiled) == before
        assert rng_state(interpreted) == before

    def test_sampled_stream_is_bit_identical(self, prompts):
        interpreted, compiled = make_generator(False), make_generator(True)
        for prompt in prompts:
            assert_same_candidate(
                interpreted.generate(prompt, greedy=False),
                compiled.generate(prompt, greedy=False),
            )
            # The RNG streams stay aligned after *every* prompt, not just at
            # the end — each sampled slot consumes exactly one uniform.
            assert rng_state(interpreted) == rng_state(compiled)

    def test_diverse_candidates_match(self, prompts):
        interpreted, compiled = make_generator(False), make_generator(True)
        for prompt in prompts:
            for a, b in zip(interpreted.candidates(prompt, 4), compiled.candidates(prompt, 4)):
                assert_same_candidate(a, b)
            assert rng_state(interpreted) == rng_state(compiled)

    def test_batched_paths_match(self, prompts):
        interpreted, compiled = make_generator(False), make_generator(True)
        for greedy in (True, False):
            batch_a = interpreted.generate_batch(prompts, greedy=greedy)
            batch_b = compiled.generate_batch(prompts, greedy=greedy)
            for a, b in zip(batch_a, batch_b):
                assert a.decisions == b.decisions
                assert a.fault.fault_id == b.fault.fault_id
                assert a.fault.code == b.fault.code
                # Batch readback vectorizes the logprob sum; the library's
                # established batched-vs-solo envelope applies.
                assert a.logprob == pytest.approx(b.logprob, abs=1e-9)
            assert rng_state(interpreted) == rng_state(compiled)

    def test_candidates_batch_matches_with_duplicates(self, prompts):
        duplicated = [prompts[0], prompts[1]] * 3 + [prompts[2]]
        interpreted, compiled = make_generator(False), make_generator(True)
        batch_a = interpreted.candidates_batch(duplicated, 4)
        batch_b = compiled.candidates_batch(duplicated, 4)
        for row_a, row_b in zip(batch_a, batch_b):
            for a, b in zip(row_a, row_b):
                assert_same_candidate(a, b)
        assert rng_state(interpreted) == rng_state(compiled)

    def test_feedback_directives_still_honoured(self, prompts, extractor, prompt_builder):
        base = prompts[0]
        directives = {"handling": "retry", "severity": "high"}
        prompt = prompt_builder.build(base.spec, base.context, feedback_directives=directives)
        interpreted, compiled = make_generator(False), make_generator(True)
        a = interpreted.generate(prompt, greedy=True)
        b = compiled.generate(prompt, greedy=True)
        assert_same_candidate(a, b)
        assert b.decisions.handling == "retry"
        assert b.decisions.severity == "high"


class TestAutomaton:
    def test_constraints_become_forced_jump_edges(self, prompts, prompt_builder):
        base = prompts[0]
        prompt = prompt_builder.build(
            base.spec, base.context, feedback_directives={"handling": "retry"}
        )
        config = ModelConfig()
        automaton = DecisionAutomaton.from_constraints(constraint_slots(prompt, config))
        assert automaton.is_forced("handling")
        assert not automaton.is_forced("placement")
        assert automaton.allows("handling", automaton.forced["handling"])
        free = [i for i in range(len(automaton.masks["handling"])) if automaton.allows("handling", i)]
        assert free == [automaton.forced["handling"]]

    def test_jump_forward_taken_counts_forced_slots(self, prompts):
        compiled = make_generator(True)
        prompt = prompts[0]
        automaton = compiled.compiler.compile(prompt)
        forced = len(automaton.forced)
        assert forced >= 1  # the confident spec pins the template slot
        before = automaton.jump_forward_taken
        compiled.generate(prompt, greedy=True)
        assert automaton.jump_forward_taken == before + forced
        compiled.generate(prompt, greedy=False)
        assert automaton.jump_forward_taken == before + 2 * forced

    def test_constrain_matches_interpreted_distributions(self, prompts):
        interpreted, compiled = make_generator(False), make_generator(True)
        prompt = prompts[0]
        features = interpreted.encoder.encode(prompt)
        oracle = interpreted._constrained_distributions(prompt, features)
        automaton = compiled.compiler.compile(prompt)
        raw = compiled.policy.forward(compiled.encoder.encode(prompt)).probabilities
        adapted = automaton.constrain(raw)
        for slot, matrix in oracle.items():
            assert (adapted[slot] == matrix).all()


class TestCompilerCache:
    def test_cache_hit_miss_counters(self, prompts):
        compiler = GrammarCompiler(ModelConfig())
        first = compiler.compile(prompts[0])
        assert compiler.cache_info() == {"hits": 0, "misses": 1, "size": 1, "max_size": 512}
        again = compiler.compile(prompts[0])
        assert again is first
        assert compiler.cache_info()["hits"] == 1
        compiler.compile(prompts[1])
        info = compiler.cache_info()
        assert info["misses"] == 2 and info["size"] == 2

    def test_cache_size_zero_disables_caching(self, prompts):
        compiler = GrammarCompiler(ModelConfig(compiled_cache_size=0))
        a = compiler.compile(prompts[0])
        b = compiler.compile(prompts[0])
        assert a is not b
        assert compiler.cache_info() == {"hits": 0, "misses": 0, "size": 0, "max_size": 0}

    def test_lru_bound_is_respected(self, prompts):
        compiler = GrammarCompiler(ModelConfig(compiled_cache_size=2))
        for prompt in prompts[:3]:
            compiler.compile(prompt)
        info = compiler.cache_info()
        assert info["size"] == 2 and info["max_size"] == 2
        # The oldest entry was evicted: recompiling it is a miss.
        misses = info["misses"]
        compiler.compile(prompts[0])
        assert compiler.cache_info()["misses"] == misses + 1

    def test_export_import_round_trip(self, prompts):
        source = GrammarCompiler(ModelConfig())
        for prompt in prompts[:3]:
            source.compile(prompt)
        snapshot = source.export_cache()
        assert len(snapshot) == 3

        fresh = GrammarCompiler(ModelConfig())
        assert fresh.import_cache(snapshot) == 3
        hits_before = fresh.cache_info()["hits"]
        for prompt in prompts[:3]:
            restored = fresh.compile(prompt)
            direct = DecisionAutomaton.from_constraints(constraint_slots(prompt, ModelConfig()))
            assert restored.forced == direct.forced
            for slot, mask in direct.masks.items():
                assert (restored.masks[slot] == mask).all()
        assert fresh.cache_info()["hits"] == hits_before + 3
        assert fresh.cache_info()["misses"] == 0

    def test_import_respects_disabled_cache(self, prompts):
        source = GrammarCompiler(ModelConfig())
        source.compile(prompts[0])
        disabled = GrammarCompiler(ModelConfig(compiled_cache_size=0))
        assert disabled.import_cache(source.export_cache()) == 0


class TestDecodePlan:
    def test_forced_slots_replay_the_tempered_tail(self, prompts):
        compiled = make_generator(True)
        prompt = prompts[0]
        automaton = compiled.compiler.compile(prompt)
        raw = compiled.policy.forward(compiled.encoder.encode(prompt)).probabilities
        plan = DecodePlan.for_sampling(raw, automaton, temperature=1.0, top_k=None, top_p=None)
        for slot, index in automaton.forced.items():
            assert plan.forced[slot] == index
            # Any draw outside the ~1e-12 residual tail hits the forced
            # value; the tail itself is deliberately preserved (the
            # interpreted sampler has it too), which is why the plan replays
            # the tempered one-hot instead of short-circuiting.
            assert plan.replay(slot, 1e-6) == index
            assert plan.replay(slot, 0.5) == index
            assert plan.replay(slot, 1.0 - 1e-9) == index
