"""Validation of the typed service-layer request objects."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import CampaignRequest, DatasetRequest, GenerateRequest, RLHFRequest
from repro.errors import RequestError


class TestGenerateRequestValidation:
    def test_minimal_request_is_valid(self):
        request = GenerateRequest(description="Simulate a timeout in transfer")
        assert request.kind == "generate"
        assert request.greedy is True

    def test_requests_are_frozen_and_hashable(self):
        request = GenerateRequest(description="x", target="bank")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.description = "y"
        assert hash(request) == hash(GenerateRequest(description="x", target="bank"))

    @pytest.mark.parametrize("description", ["", "   ", None, 42])
    def test_bad_description_is_rejected(self, description):
        with pytest.raises(RequestError):
            GenerateRequest(description=description)

    def test_unknown_target_is_rejected_with_available_names(self):
        with pytest.raises(RequestError, match="unknown target system.*available"):
            GenerateRequest(description="x", target="no-such-system")

    def test_execute_requires_a_target(self):
        with pytest.raises(RequestError, match="execute=True requires a target"):
            GenerateRequest(description="x", execute=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": 0.8},
            {"top_k": 3},
            {"top_p": 0.9},
        ],
    )
    def test_sampling_controls_conflict_with_greedy(self, kwargs):
        with pytest.raises(RequestError, match="conflicting decode parameters"):
            GenerateRequest(description="x", greedy=True, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": 0.0},
            {"temperature": -1.0},
            {"top_k": 0},
            {"top_k": -2},
            {"top_p": 0.0},
            {"top_p": 1.5},
        ],
    )
    def test_out_of_range_decode_params_are_rejected(self, kwargs):
        with pytest.raises(RequestError):
            GenerateRequest(description="x", greedy=False, **kwargs)

    def test_bad_mode_is_rejected(self):
        with pytest.raises(RequestError, match="mode must be one of"):
            GenerateRequest(description="x", mode="quantum")

    def test_blank_request_id_is_rejected(self):
        with pytest.raises(RequestError, match="request_id"):
            GenerateRequest(description="x", request_id="  ")

    def test_sampled_request_with_controls_is_valid(self):
        request = GenerateRequest(
            description="x", greedy=False, temperature=1.2, top_k=3, top_p=0.95, seed=99
        )
        assert request.seed == 99


class TestDatasetRequestValidation:
    def test_defaults_are_valid(self):
        request = DatasetRequest()
        assert request.kind == "dataset"
        assert request.targets == ()

    def test_targets_are_normalised_to_a_tuple(self):
        request = DatasetRequest(targets=["bank", "kvstore"])
        assert request.targets == ("bank", "kvstore")

    def test_bare_string_targets_are_rejected(self):
        with pytest.raises(RequestError, match="sequence of strings"):
            DatasetRequest(targets="bank")

    def test_unknown_target_is_rejected(self):
        with pytest.raises(RequestError, match="targets.*unknown target"):
            DatasetRequest(targets=("bank", "nope"))

    @pytest.mark.parametrize("samples", [0, -5])
    def test_negative_counts_are_rejected(self, samples):
        with pytest.raises(RequestError, match="samples_per_target"):
            DatasetRequest(samples_per_target=samples)

    def test_run_sft_conflicts_with_streaming(self):
        with pytest.raises(RequestError, match="in-memory dataset"):
            DatasetRequest(run_sft=True, jsonl_path="out.jsonl")


class TestCampaignRequestValidation:
    def test_valid_request(self):
        request = CampaignRequest(target="bank", scenarios=("a timeout in transfer",))
        assert request.kind == "campaign"
        assert request.techniques == ("neural", "predefined-model", "random")

    def test_target_is_required(self):
        with pytest.raises(RequestError, match="target is required"):
            CampaignRequest(scenarios=("x",))

    @pytest.mark.parametrize("scenarios", [(), ("ok", "   ")])
    def test_empty_or_blank_scenarios_are_rejected(self, scenarios):
        with pytest.raises(RequestError, match="scenarios"):
            CampaignRequest(target="bank", scenarios=scenarios)

    def test_unknown_technique_is_rejected(self):
        with pytest.raises(RequestError, match="unknown techniques"):
            CampaignRequest(target="bank", scenarios=("x",), techniques=("llm-magic",))

    @pytest.mark.parametrize("budget", [0, -3])
    def test_negative_budget_is_rejected(self, budget):
        with pytest.raises(RequestError, match="budget"):
            CampaignRequest(target="bank", scenarios=("x",), budget=budget)


class TestRLHFRequestValidation:
    def test_valid_request(self):
        request = RLHFRequest(descriptions=("make transfer time out",), target="bank")
        assert request.kind == "rlhf"

    def test_empty_descriptions_are_rejected(self):
        with pytest.raises(RequestError, match="descriptions"):
            RLHFRequest(descriptions=())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"iterations": -1},
            {"candidates_per_iteration": 0},
            {"candidates_per_iteration": -4},
        ],
    )
    def test_negative_schedule_counts_are_rejected(self, kwargs):
        with pytest.raises(RequestError):
            RLHFRequest(descriptions=("x",), **kwargs)

    def test_unknown_target_is_rejected(self):
        with pytest.raises(RequestError, match="unknown target"):
            RLHFRequest(descriptions=("x",), target="nope")


class TestRequestSerialization:
    def test_to_dict_round_trips_field_values(self):
        request = GenerateRequest(description="x", target="bank", execute=True, mode="pool")
        data = request.to_dict()
        assert data["description"] == "x"
        assert data["target"] == "bank"
        assert data["execute"] is True
        assert GenerateRequest(**data) == request

    def test_sequence_fields_serialize_as_lists(self):
        request = CampaignRequest(target="bank", scenarios=("a", "b"), techniques=("neural",))
        data = request.to_dict()
        assert data["scenarios"] == ["a", "b"]
        assert data["techniques"] == ["neural"]
