"""Tests for the decision schema and the feature encoder."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ConfigurationError, GenerationError
from repro.llm import DECISION_SLOTS, DecisionVector, FeatureEncoder, decision_distance, reference_decisions, slot_sizes
from repro.nlp import PromptBuilder
from repro.types import FaultType, HandlingStyle, PlacementStyle, TriggerKind


class TestDecisionSchema:
    def test_every_concrete_fault_type_has_a_template(self):
        assert set(DECISION_SLOTS["template"]) == {ft.value for ft in FaultType.concrete()}

    def test_slot_sizes_match_schema(self):
        sizes = slot_sizes()
        for slot, values in DECISION_SLOTS.items():
            assert sizes[slot] == len(values)

    def test_round_trip_through_indices(self):
        vector = DecisionVector(
            template="timeout", trigger="always", handling="retry", placement="wrap_body", severity="high"
        )
        assert DecisionVector.from_indices(vector.to_indices()) == vector

    def test_invalid_value_rejected(self):
        with pytest.raises(GenerationError):
            DecisionVector.from_dict(
                {"template": "bogus", "trigger": "always", "handling": "retry",
                 "placement": "wrap_body", "severity": "low"}
            )

    def test_typed_accessors(self):
        vector = DecisionVector(
            template="race_condition", trigger="probabilistic", handling="fallback",
            placement="inside_loop", severity="low",
        )
        assert vector.fault_type is FaultType.RACE_CONDITION
        assert vector.trigger_kind is TriggerKind.PROBABILISTIC
        assert vector.handling_style is HandlingStyle.FALLBACK
        assert vector.placement_style is PlacementStyle.INSIDE_LOOP
        assert vector.severity_factor == 0.5


class TestReferenceDecisions:
    def test_running_example(self, sample_prompt):
        reference = reference_decisions(sample_prompt.spec)
        assert reference.template == "timeout"
        assert reference.handling == "unhandled"
        assert reference.trigger == "always"

    def test_retry_directive_overrides_handling(self, sample_prompt):
        spec = dataclasses.replace(sample_prompt.spec, directives={"wants_retry": True})
        assert reference_decisions(spec).handling == "retry"

    def test_unknown_fault_type_defaults_to_exception(self, extractor):
        spec = extractor.extract_from_text("something vague happens here")
        assert reference_decisions(spec).template == "exception"

    def test_placement_follows_fault_type(self, extractor):
        leak = extractor.extract_from_text("introduce a memory leak in the worker loop")
        assert reference_decisions(leak).placement == "body_start"
        wrong_return = extractor.extract_from_text("the function returns the wrong total")
        assert reference_decisions(wrong_return).placement == "before_return"

    def test_severity_from_delay_seconds(self, extractor):
        slow = extractor.extract_from_text("add a delay of 5 seconds to the endpoint")
        assert reference_decisions(slow).severity == "high"
        quick = extractor.extract_from_text("add a delay of 10 milliseconds to the endpoint")
        assert reference_decisions(quick).severity == "low"


class TestDecisionDistance:
    def test_zero_for_identical(self, sample_prompt):
        reference = reference_decisions(sample_prompt.spec)
        assert decision_distance(reference, reference) == 0.0

    def test_template_mismatch_weighs_most(self, sample_prompt):
        reference = reference_decisions(sample_prompt.spec)
        wrong_template = DecisionVector.from_dict({**reference.to_dict(), "template": "memory_leak"})
        wrong_severity = DecisionVector.from_dict({**reference.to_dict(), "severity": "high"})
        assert decision_distance(reference, wrong_template) > decision_distance(reference, wrong_severity)

    def test_distance_bounded_by_one(self, sample_prompt):
        reference = reference_decisions(sample_prompt.spec)
        other = DecisionVector(
            template="disk_failure", trigger="on_nth_call", handling="fallback",
            placement="before_return", severity="high",
        )
        assert 0.0 < decision_distance(reference, other) <= 1.0


class TestFeatureEncoder:
    def test_dimension_matches_config(self, sample_prompt):
        config = ModelConfig(feature_dim=96)
        encoder = FeatureEncoder(config)
        assert encoder.encode(sample_prompt).shape == (96,)

    def test_too_small_feature_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureEncoder(ModelConfig(feature_dim=40))

    def test_encoding_is_deterministic(self, sample_prompt):
        encoder = FeatureEncoder()
        assert np.allclose(encoder.encode(sample_prompt), encoder.encode(sample_prompt))

    def test_different_descriptions_encode_differently(self, extractor, prompt_builder):
        encoder = FeatureEncoder()
        first = prompt_builder.build(extractor.extract_from_text("introduce a memory leak in the cache"))
        second = prompt_builder.build(extractor.extract_from_text("a race condition between two writers"))
        assert not np.allclose(encoder.encode(first), encoder.encode(second))

    def test_feedback_directives_change_encoding(self, sample_prompt, prompt_builder):
        encoder = FeatureEncoder()
        refined = prompt_builder.refine(sample_prompt, {"wants_retry": True})
        assert not np.allclose(encoder.encode(sample_prompt), encoder.encode(refined))

    def test_hashed_text_features_are_normalised(self, sample_prompt):
        encoder = FeatureEncoder()
        vector = encoder.encode(sample_prompt)
        assert float(np.max(np.abs(vector))) <= 1.0 + 1e-9
