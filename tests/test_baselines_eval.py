"""Tests for the baseline techniques and the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.baselines import (
    EffortAssumptions,
    ManualEffortModel,
    PREDEFINED_FAULT_MODEL,
    PredefinedModelInjector,
    RandomInjector,
)
from repro.eval import (
    AlignmentSeries,
    TimingCollector,
    alignment_score,
    baseline_coverage,
    bootstrap_confidence_interval,
    compare_effort,
    decision_accuracy,
    edit_similarity,
    effectiveness,
    mean,
    neural_coverage,
    relative_change,
    stddev,
    syntactic_validity,
    token_bleu,
    token_jaccard,
)
from repro.llm import reference_decisions
from repro.types import FailureMode, FaultType, InjectionOutcome


class TestPredefinedModelInjector:
    def test_plan_uses_only_model_operators(self, sample_module):
        plan = PredefinedModelInjector().plan(sample_module, budget=10)
        assert plan.faults
        assert all(fault.operator in PREDEFINED_FAULT_MODEL for fault in plan.faults)
        assert plan.configuration_actions == 2 * len(plan.faults)

    def test_can_express_structural_always_on_faults(self, extractor, sample_module):
        injector = PredefinedModelInjector()
        spec = extractor.extract_from_text(
            "negate the branch condition in the validate function", sample_module
        )
        assert injector.can_express(spec)

    @pytest.mark.parametrize(
        "text",
        [
            "simulate a timeout in the payment call",
            "introduce a race condition between two workers",
            "make the call fail 30% of the time",
            "a timeout occurs and a retry mechanism recovers it",
            "introduce a memory leak in the cache",
        ],
    )
    def test_cannot_express_scenario_faults(self, extractor, text):
        assert not PredefinedModelInjector().can_express(extractor.extract_from_text(text))

    def test_random_injector_expresses_nothing(self, extractor, sample_module):
        injector = RandomInjector()
        spec = extractor.extract_from_text("negate the condition in validate", sample_module)
        assert not injector.can_express(spec)
        plan = injector.plan(sample_module, budget=5)
        assert len(plan.faults) == 5


class TestManualEffortModel:
    def test_neural_effort_scales_with_scenarios(self):
        model = ManualEffortModel()
        assert model.neural(10).minutes > model.neural(5).minutes

    def test_conventional_effort_grows_when_less_expressible(self):
        model = ManualEffortModel()
        mostly = model.conventional(10, expressible_fraction=0.9)
        barely = model.conventional(10, expressible_fraction=0.1)
        assert barely.minutes > mostly.minutes

    def test_neural_is_faster_under_default_assumptions(self):
        comparison = compare_effort(scenarios=12, expressible_fraction=0.3)
        assert comparison.speedup > 1.0
        assert comparison.to_dict()["neural"]["scenarios_per_hour"] > comparison.to_dict()["conventional"][
            "scenarios_per_hour"
        ]

    def test_custom_assumptions_respected(self):
        assumptions = EffortAssumptions(write_description_minutes=0.0, review_candidate_minutes=0.0,
                                        feedback_round_minutes=0.0)
        estimate = ManualEffortModel(assumptions).neural(5, feedback_rounds_per_scenario=0.0)
        assert estimate.minutes == 0.0
        assert estimate.scenarios_per_hour == 0.0

    def test_speedup_handles_zero_neural_effort(self):
        model = ManualEffortModel(EffortAssumptions(write_description_minutes=0.0,
                                                    review_candidate_minutes=0.0,
                                                    feedback_round_minutes=0.0))
        neural = model.neural(3, feedback_rounds_per_scenario=0.0)
        conventional = model.conventional(3, expressible_fraction=0.5)
        assert model.speedup(neural, conventional) == float("inf")


class TestCodeMetrics:
    def test_edit_similarity_bounds(self):
        assert edit_similarity("abc", "abc") == 1.0
        assert edit_similarity("", "") == 1.0
        assert 0.0 <= edit_similarity("abc", "xyz") < 1.0

    def test_token_jaccard(self):
        assert token_jaccard("return a + b", "return a + b") == 1.0
        assert token_jaccard("return a", "yield b") < 0.5

    def test_token_bleu_orders_similarity(self):
        reference = "def f(x):\n    return x + 1\n"
        close = "def f(x):\n    return x + 2\n"
        far = "class Something:\n    pass\n"
        assert token_bleu(close, reference) > token_bleu(far, reference)
        assert token_bleu(reference, reference) == pytest.approx(1.0)

    def test_token_bleu_empty(self):
        assert token_bleu("", "return 1") == 0.0

    def test_decision_accuracy(self):
        expected = {"template": "timeout", "handling": "retry"}
        assert decision_accuracy({"template": "timeout", "handling": "retry"}, expected) == 1.0
        assert decision_accuracy({"template": "timeout", "handling": "unhandled"}, expected) == 0.5
        assert decision_accuracy({}, {}) == 0.0

    def test_syntactic_validity(self):
        assert syntactic_validity("def f():\n    return 1\n")
        assert not syntactic_validity("def f(:\n")


class TestCoverageAndEffectiveness:
    def specs(self, extractor):
        texts = [
            "simulate a timeout in the gateway",
            "introduce a race condition in the scheduler",
            "negate the validation condition in the parser",
        ]
        return [extractor.extract_from_text(text) for text in texts]

    def test_neural_coverage_counts_matches(self, extractor):
        specs = self.specs(extractor)
        templates = [spec.fault_type.value for spec in specs]
        report = neural_coverage(specs, templates)
        assert report.scenario_coverage == 1.0
        assert report.requested_type_coverage == 1.0

    def test_neural_coverage_with_mismatch(self, extractor):
        specs = self.specs(extractor)
        templates = ["exception"] * len(specs)
        report = neural_coverage(specs, templates)
        assert report.scenario_coverage < 1.0

    def test_baseline_coverage_uses_predicate(self, extractor):
        specs = self.specs(extractor)
        report = baseline_coverage(specs, lambda spec: False, [FaultType.WRONG_CONDITION], "x")
        assert report.scenario_coverage == 0.0
        assert report.fault_type_coverage > 0.0

    def test_effectiveness_report(self):
        outcomes = [
            InjectionOutcome(fault_id="a", activated=True, failure_mode=FailureMode.CRASH),
            InjectionOutcome(fault_id="b", activated=True, failure_mode=FailureMode.SILENT_DATA_CORRUPTION),
            InjectionOutcome(fault_id="c", activated=False, failure_mode=FailureMode.NO_FAILURE),
            InjectionOutcome(fault_id="d", activated=True, failure_mode=FailureMode.ERROR_DETECTED),
        ]
        report = effectiveness(outcomes, technique="unit")
        assert report.total == 4
        assert report.failure_exposure_rate == pytest.approx(0.75)
        assert report.distinct_failure_modes == 3
        assert report.to_dict()["technique"] == "unit"


class TestAlignmentAndStatistics:
    def test_alignment_score_perfect_match(self, sample_prompt):
        reference = reference_decisions(sample_prompt.spec)
        assert alignment_score(reference, reference) == 1.0

    def test_alignment_series_tracks_improvement(self):
        series = AlignmentSeries()
        for value in (0.2, 0.4, 0.4, 0.7):
            series.add(value)
        assert series.improvement == pytest.approx(0.5)
        assert series.monotone_fraction == 1.0
        series.add(0.6)
        assert series.monotone_fraction < 1.0

    def test_timing_collector_aggregates(self):
        collector = TimingCollector()
        with collector.stage("nlp"):
            pass
        with collector.stage("nlp"):
            pass
        with collector.stage("generation"):
            pass
        stages = collector.by_stage()
        assert set(stages) == {"nlp", "generation"}
        assert collector.total_seconds() >= 0.0

    def test_statistics_helpers(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert stddev([5.0]) == 0.0
        assert stddev([1.0, 3.0]) > 0.0
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)
        assert relative_change(0.0, 3.0) == 0.0

    def test_bootstrap_interval_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = bootstrap_confidence_interval(values, resamples=200)
        assert low <= mean(values) <= high
        assert bootstrap_confidence_interval([2.0]) == (2.0, 2.0)
        assert bootstrap_confidence_interval([]) == (0.0, 0.0)
