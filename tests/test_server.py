"""The HTTP/JSON serving front-end: codecs, routing, and live-socket behaviour.

The codec tests pin the wire contract (``from_dict(to_dict(r)) == r``, strict
unknown-field rejection, the RequestError → HTTP 400 mapping); the end-to-end
tests drive a real :class:`FaultInjectionServer` on an ephemeral port through
``http.client`` — the same path external clients take.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro import FaultInjectionServer, PipelineConfig, ServerConfig
from repro.api import (
    CacheStats,
    CampaignRequest,
    DatasetRequest,
    ErrorInfo,
    ExecutionStats,
    GenerateRequest,
    REQUEST_KINDS,
    Response,
    RLHFRequest,
    ShardInfo,
    StatsSnapshot,
    Timings,
    WirePayload,
    request_from_dict,
)
from repro.config import EngineConfig, ExecutionConfig
from repro.errors import RequestError

DESCRIPTION = "Simulate a timeout in the transfer function causing an unhandled exception"

REQUEST_SAMPLES = [
    GenerateRequest(description=DESCRIPTION, target="bank", execute=True, mode="pool"),
    GenerateRequest(
        description=DESCRIPTION, greedy=False, temperature=0.7, top_k=3, top_p=0.9, seed=99
    ),
    DatasetRequest(targets=("bank", "kvstore"), samples_per_target=5, run_sft=True),
    CampaignRequest(
        target="bank", scenarios=(DESCRIPTION,), techniques=("neural",), budget=2
    ),
    RLHFRequest(descriptions=(DESCRIPTION,), target="bank", iterations=2),
]


class TestRequestCodec:
    @pytest.mark.parametrize("request_obj", REQUEST_SAMPLES, ids=lambda r: r.kind)
    def test_to_dict_from_dict_round_trips(self, request_obj):
        assert type(request_obj).from_dict(request_obj.to_dict()) == request_obj

    @pytest.mark.parametrize("request_obj", REQUEST_SAMPLES, ids=lambda r: r.kind)
    def test_round_trips_through_json(self, request_obj):
        wire = json.loads(json.dumps(request_obj.to_dict()))
        assert request_from_dict(request_obj.kind, wire) == request_obj

    def test_kind_key_is_accepted_when_matching(self):
        data = {"kind": "generate", "description": DESCRIPTION}
        assert GenerateRequest.from_dict(data).description == DESCRIPTION

    def test_kind_mismatch_is_rejected(self):
        with pytest.raises(RequestError, match="kind mismatch"):
            DatasetRequest.from_dict({"kind": "generate"})

    def test_unknown_field_is_rejected_by_name(self):
        with pytest.raises(RequestError, match="bogus"):
            GenerateRequest.from_dict({"description": DESCRIPTION, "bogus": 1})

    def test_non_mapping_body_is_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            GenerateRequest.from_dict(["not", "a", "mapping"])

    def test_wrong_field_type_maps_to_request_error(self):
        with pytest.raises(RequestError):
            GenerateRequest.from_dict(
                {"description": DESCRIPTION, "greedy": False, "temperature": "hot"}
            )

    def test_validation_errors_surface_unchanged(self):
        with pytest.raises(RequestError, match="non-empty"):
            GenerateRequest.from_dict({"description": "   "})

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            request_from_dict("telepathy", {})

    def test_every_kind_is_dispatchable(self):
        assert set(REQUEST_KINDS) == {"generate", "dataset", "campaign", "rlhf"}


class TestResponseCodec:
    def test_error_envelope_round_trips(self):
        response = Response(
            request_id="req-1",
            kind="generate",
            status="error",
            error=ErrorInfo(type="RequestError", message="boom"),
            timings=Timings(queued_seconds=0.5, execution_seconds=0.25),
        )
        wire = response.to_dict()
        decoded = Response.from_dict(json.loads(json.dumps(wire)))
        assert decoded.to_dict() == wire
        assert decoded.error.type == "RequestError"
        assert not decoded.ok

    def test_payload_comes_back_as_wire_payload(self):
        wire = {
            "schema_version": "1.0",
            "request_id": "req-2",
            "kind": "dataset",
            "status": "ok",
            "payload": {"records": 3, "stats": {}, "sft": None, "jsonl_path": None},
            "error": None,
            "timings": {
                "queued_seconds": 0.0,
                "execution_seconds": 0.0,
                "decode_seconds": 0.0,
                "total_seconds": 0.0,
            },
        }
        decoded = Response.from_dict(wire)
        assert isinstance(decoded.payload, WirePayload)
        assert decoded.payload["records"] == 3
        assert decoded.to_dict() == wire

    def test_decode_seconds_survives_the_wire_round_trip(self):
        response = Response(
            request_id="req-3",
            kind="generate",
            status="ok",
            timings=Timings(
                queued_seconds=0.125, execution_seconds=0.75, decode_seconds=0.0625
            ),
        )
        wire = response.to_dict()
        assert wire["timings"]["decode_seconds"] == 0.0625
        # decode_seconds is a component breakdown, not part of the total.
        assert wire["timings"]["total_seconds"] == 0.875
        decoded = Response.from_dict(json.loads(json.dumps(wire)))
        assert decoded.timings.decode_seconds == 0.0625
        assert decoded.to_dict() == wire
        assert decoded.to_dict()["timings"] == wire["timings"]

    def test_envelopes_without_decode_seconds_default_to_zero(self):
        # Wire compatibility: envelopes written before the field existed.
        decoded = Timings.from_dict({"queued_seconds": 0.5, "execution_seconds": 0.25})
        assert decoded.decode_seconds == 0.0

    def test_missing_required_keys_are_rejected(self):
        with pytest.raises(RequestError, match="request_id"):
            Response.from_dict({"kind": "generate", "status": "ok"})

    def test_non_mapping_envelope_is_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            Response.from_dict("nope")

    @pytest.mark.parametrize(
        "corruption",
        [
            {"payload": [1, 2]},
            {"error": "boom"},
            {"timings": "fast"},
            {"timings": {"queued_seconds": "slow"}},
        ],
        ids=["payload-list", "error-string", "timings-string", "timings-non-numeric"],
    )
    def test_corrupt_envelope_sections_map_to_request_error(self, corruption):
        envelope = {"request_id": "r", "kind": "generate", "status": "ok", **corruption}
        with pytest.raises(RequestError):
            Response.from_dict(envelope)


class TestStatsCodec:
    """The typed stats surface: byte-exact round-trips, strict decoding."""

    def test_cache_stats_round_trips(self):
        stats = CacheStats(hits=7, misses=2, size=5, max_size=128)
        wire = stats.to_dict()
        assert list(wire) == ["hits", "misses", "size", "max_size"]
        assert CacheStats.from_dict(json.loads(json.dumps(wire))) == stats

    def test_cache_stats_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="evictions"):
            CacheStats.from_dict({"hits": 1, "evictions": 3})

    def test_execution_stats_round_trips(self):
        stats = ExecutionStats(
            pools={"bank:pool": {"tasks_executed": 4}},
            totals={"tasks_executed": 4, "pool_rebuilds": 1},
            breakers={"bank": {"state": "closed"}},
        )
        wire = stats.to_dict()
        decoded = ExecutionStats.from_dict(json.loads(json.dumps(wire)))
        assert decoded.to_dict() == wire

    def test_execution_stats_rejects_non_mapping_sections(self):
        with pytest.raises(RequestError):
            ExecutionStats.from_dict({"totals": [1, 2]})
        with pytest.raises(RequestError, match="bogus"):
            ExecutionStats.from_dict({"bogus": {}})

    def test_shard_info_round_trips(self):
        info = ShardInfo(
            index=1,
            url="http://127.0.0.1:9999",
            respawns=2,
            queue_depth=3,
            open_breakers=1,
            stats={"schema_version": "1.0", "server": {"requests_total": 9}},
        )
        wire = info.to_dict()
        assert ShardInfo.from_dict(json.loads(json.dumps(wire))).to_dict() == wire

    def test_shard_info_omits_stats_when_absent(self):
        assert "stats" not in ShardInfo(index=0, url="").to_dict()

    def test_shard_info_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="weight"):
            ShardInfo.from_dict({"index": 0, "url": "", "weight": 2})

    def test_snapshot_single_engine_round_trips(self):
        snapshot = StatsSnapshot(
            server={"requests_total": 3, "draining": False},
            scheduler={"queue_depth": 0, "dispatched": 3},
            execution=ExecutionStats(totals={"tasks_executed": 1}),
            caches={"extract": CacheStats(hits=1)},
        )
        wire = snapshot.to_dict()
        # The single-engine wire shape: no shards/aggregate keys at all.
        assert set(wire) == {"schema_version", "server", "scheduler", "execution", "caches"}
        decoded = StatsSnapshot.from_dict(json.loads(json.dumps(wire)))
        assert decoded.to_dict() == wire
        assert decoded.shards == ()

    def test_snapshot_sharded_round_trips(self):
        snapshot = StatsSnapshot(
            server={"requests_total": 5},
            shards=(ShardInfo(index=0, url="http://h:1"), ShardInfo(index=1, url="http://h:2")),
            aggregate={"requests_total": 5, "shards": 2},
        )
        wire = snapshot.to_dict()
        assert set(wire) == {"schema_version", "server", "shards", "aggregate"}
        decoded = StatsSnapshot.from_dict(json.loads(json.dumps(wire)))
        assert decoded.to_dict() == wire
        assert [shard.index for shard in decoded.shards] == [0, 1]

    def test_snapshot_requires_a_server_section(self):
        with pytest.raises(RequestError, match="server"):
            StatsSnapshot.from_dict({"schema_version": "1.0"})

    def test_snapshot_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="telemetry"):
            StatsSnapshot.from_dict({"server": {}, "telemetry": {}})

    def test_snapshot_rejects_non_array_shards(self):
        with pytest.raises(RequestError):
            StatsSnapshot.from_dict({"server": {}, "shards": {"0": {}}})


@pytest.fixture(scope="module")
def server():
    """One live server on an ephemeral port, shared by the socket tests."""
    config = PipelineConfig(
        execution=ExecutionConfig(max_workers=1),
        engine=EngineConfig(max_queue_delay_seconds=0.0),
    )
    with FaultInjectionServer(
        config=config, server_config=ServerConfig(port=0, request_retention=4)
    ) as live:
        yield live


def _exchange(server, method: str, path: str, body=None):
    """One HTTP exchange against the live server → (status, decoded JSON)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        payload = json.dumps(body).encode() if isinstance(body, dict) else body
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestLiveServer:
    def test_healthz(self, server):
        status, body = _exchange(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_healthz_carries_routing_signals(self, server):
        """Pin the load-balancer contract: queue depth, draining, breakers."""
        status, body = _exchange(server, "GET", "/healthz")
        assert status == 200
        assert body["queue_depth"] == 0
        assert body["draining"] is False
        assert body["open_breakers"] == 0
        assert set(body) == {
            "status",
            "schema_version",
            "queue_depth",
            "draining",
            "open_breakers",
        }

    def test_sync_generate_returns_the_envelope(self, server):
        status, envelope = _exchange(
            server, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "bank"}
        )
        assert status == 200
        assert envelope["status"] == "ok"
        assert envelope["kind"] == "generate"
        assert envelope["payload"]["fault"]["fault_id"].startswith("fault-")
        timings = envelope["timings"]
        assert 0.0 <= timings["decode_seconds"] <= timings["execution_seconds"]
        decoded = Response.from_dict(envelope)
        assert decoded.ok and decoded.to_dict() == envelope

    def test_envelope_matches_in_process_submission(self, server):
        status, envelope = _exchange(
            server, "POST", "/v1/generate", {"description": DESCRIPTION, "target": "bank"}
        )
        assert status == 200
        direct = server.engine.run(
            GenerateRequest(description=DESCRIPTION, target="bank")
        ).to_dict()
        for key in ("fault", "strategy", "logprob", "outcome"):
            assert envelope["payload"][key] == direct["payload"][key]

    def test_bad_json_body_maps_to_400(self, server):
        status, body = _exchange(server, "POST", "/v1/generate", b"{not json")
        assert status == 400
        assert body["status"] == "error"
        assert body["error"]["type"] == "RequestError"

    def test_unknown_field_maps_to_400(self, server):
        status, body = _exchange(
            server, "POST", "/v1/generate", {"description": DESCRIPTION, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_validation_failure_maps_to_400(self, server):
        status, body = _exchange(server, "POST", "/v1/generate", {"description": "  "})
        assert status == 400
        assert body["error"]["type"] == "RequestError"

    def test_unknown_route_maps_to_404(self, server):
        status, body = _exchange(server, "GET", "/v2/everything")
        assert status == 404
        assert body["error"]["type"] == "RequestError"

    def test_wrong_method_maps_to_405(self, server):
        status, body = _exchange(server, "GET", "/v1/generate")
        assert status == 405
        status, _body = _exchange(server, "POST", "/healthz", {})
        assert status == 405

    def test_malformed_content_length_maps_to_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.putrequest("POST", "/v1/generate")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["type"] == "RequestError"
        finally:
            connection.close()

    def test_oversized_body_maps_to_413(self, server):
        huge = {"description": "x" * (server.server_config.max_body_bytes + 1)}
        status, body = _exchange(server, "POST", "/v1/generate", huge)
        assert status == 413
        assert body["error"]["type"] == "RequestError"

    def test_async_submit_and_poll(self, server):
        status, ticket = _exchange(
            server,
            "POST",
            "/v1/generate?async=1",
            {"description": DESCRIPTION, "target": "bank", "request_id": "async-poll-1"},
        )
        assert status == 202
        assert ticket["status"] == "pending"
        assert ticket["request_id"] == "async-poll-1"
        deadline = time.monotonic() + 60
        while True:
            status, envelope = _exchange(server, "GET", ticket["poll"])
            if status == 200:
                break
            assert status == 202
            assert time.monotonic() < deadline, "async ticket never resolved"
            time.sleep(0.02)
        assert envelope["status"] == "ok"
        assert envelope["request_id"] == "async-poll-1"

    def test_duplicate_async_request_id_maps_to_409(self, server):
        body = {"description": DESCRIPTION, "target": "bank", "request_id": "dup-1"}
        status, _ticket = _exchange(server, "POST", "/v1/generate?async=1", body)
        assert status == 202
        status, conflict = _exchange(server, "POST", "/v1/generate?async=1", body)
        assert status == 409
        assert "dup-1" in conflict["error"]["message"]

    def test_polling_an_unknown_id_maps_to_404(self, server):
        status, body = _exchange(server, "GET", "/v1/requests/never-submitted")
        assert status == 404
        assert "never-submitted" in body["error"]["message"]

    def test_stats_exposes_scheduler_caches_and_counters(self, server):
        status, stats = _exchange(server, "GET", "/v1/stats")
        assert status == 200
        assert stats["server"]["requests_total"] > 0
        assert stats["server"]["draining"] is False
        assert "queue_depth" in stats["scheduler"]
        for cache in ("extract", "encoder", "render"):
            assert {"hits", "misses", "size"} <= set(stats["caches"][cache])

    def test_single_engine_stats_wire_shape_is_unchanged(self, server):
        """Differential pin: ``--shards 1`` serving emits exactly the
        historical single-engine stats document — the typed codec migration
        must not change a byte of the key structure."""
        status, stats = _exchange(server, "GET", "/v1/stats")
        assert status == 200
        assert set(stats) == {"schema_version", "server", "scheduler", "execution", "caches"}
        assert set(stats["server"]) == {
            "requests_total",
            "http_errors_total",
            "inflight",
            "draining",
            "tickets",
        }
        assert set(stats["execution"]) == {"pools", "totals", "distributed", "breakers"}
        assert set(stats["caches"]) == {"extract", "encoder", "render", "compiled"}
        for section in stats["caches"].values():
            assert set(section) == {"hits", "misses", "size", "max_size"}
        # The document decodes losslessly through the typed codec.
        decoded = StatsSnapshot.from_dict(stats)
        assert decoded.to_dict() == stats
        assert decoded.shards == () and decoded.aggregate is None

    def test_stats_endpoint_matches_typed_snapshot(self, server):
        """`/v1/stats` is exactly ``stats_snapshot().to_dict()``."""
        assert set(server.stats()) == set(server.stats_snapshot().to_dict())

    def test_completed_tickets_are_evicted_beyond_retention(self, server):
        # retention=4 for this server: submit 6 async tickets, wait for all,
        # then trigger one more put — the oldest finished ones must age out.
        ids = [f"evict-{i}" for i in range(6)]
        for request_id in ids:
            status, _ = _exchange(
                server,
                "POST",
                "/v1/generate?async=1",
                {"description": DESCRIPTION, "target": "bank", "request_id": request_id},
            )
            assert status == 202
        deadline = time.monotonic() + 60
        while server._tickets.counts()["pending"] > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        status, _ = _exchange(
            server,
            "POST",
            "/v1/generate?async=1",
            {"description": DESCRIPTION, "target": "bank", "request_id": "evict-last"},
        )
        assert status == 202
        status, _body = _exchange(server, "GET", f"/v1/requests/{ids[0]}")
        assert status == 404


class TestDrainOnShutdown:
    def test_close_resolves_pending_tickets_and_refuses_new_work(self):
        config = PipelineConfig(
            execution=ExecutionConfig(max_workers=1),
            engine=EngineConfig(max_queue_delay_seconds=0.0),
        )
        server = FaultInjectionServer(
            config=config, server_config=ServerConfig(port=0)
        ).start()
        status, ticket = _exchange(
            server,
            "POST",
            "/v1/generate?async=1",
            {"description": DESCRIPTION, "target": "bank", "request_id": "drain-1"},
        )
        assert status == 202
        server.close()
        # Graceful drain: the queued ticket resolved before the engine closed.
        handle = server._tickets.get("drain-1")
        assert handle is not None and handle.done()
        assert handle.result().ok
        assert server.engine.closed
        with pytest.raises(OSError):
            _exchange(server, "GET", "/healthz")

    def test_close_is_idempotent(self):
        server = FaultInjectionServer(server_config=ServerConfig(port=0)).start()
        server.close()
        server.close()
        assert server.engine.closed
