"""Tests for the automated integration and testing tool."""

from __future__ import annotations

import pytest

from repro.config import IntegrationConfig
from repro.errors import IntegrationError, SandboxError
from repro.injection import FaultLoad, ProgrammableInjector
from repro.integration import (
    CampaignReport,
    ClassificationThresholds,
    ExperimentRunner,
    FailureClassifier,
    FaultIntegrator,
    SandboxRunner,
    WorkspaceManager,
)
from repro.integration.runner import RunObservation
from repro.targets import TargetRunResult, get_target
from repro.types import FailureMode, FaultSpec, GeneratedFault, TargetLocation


@pytest.fixture(scope="module")
def ecommerce_faults():
    target = get_target("ecommerce")
    injector = ProgrammableInjector()
    load = (
        FaultLoad()
        .add("raise_timeout", "process_transaction")
        .add("arithmetic_corruption", "compute_total")
        .add("negate_condition", "validate_cart")
        .add("remove_call", "close_session")
    )
    return injector.inject(target.build_source(), load)


class TestWorkspace:
    def test_create_write_read_cleanup(self, tmp_path):
        manager = WorkspaceManager(base_dir=tmp_path)
        workspace = manager.create("demo", "x = 1\n")
        assert workspace.read_module() == "x = 1\n"
        workspace.write_file("notes/log.txt", "hello")
        assert (workspace.root / "notes" / "log.txt").read_text() == "hello"
        manager.cleanup_all()
        assert not workspace.root.exists()

    def test_keep_flag_preserves_directory(self, tmp_path):
        manager = WorkspaceManager(base_dir=tmp_path, keep=True)
        workspace = manager.create("kept", "x = 1\n")
        manager.cleanup_all()
        assert workspace.root.exists()

    def test_reading_missing_module_raises(self, tmp_path):
        manager = WorkspaceManager(base_dir=tmp_path)
        workspace = manager.create("demo", "x = 1\n")
        workspace.module_path.unlink()
        with pytest.raises(SandboxError):
            workspace.read_module()

    def test_context_manager_cleans_up(self, tmp_path):
        manager = WorkspaceManager(base_dir=tmp_path)
        with manager.create("ctx", "x = 1\n") as workspace:
            root = workspace.root
            assert root.exists()
        assert not root.exists()


class TestSandboxRunner:
    def test_inprocess_run_matches_target_execute(self):
        runner = SandboxRunner(IntegrationConfig(workload_iterations=10))
        observation = runner.run("bank", get_target("bank").build_source(), mode="inprocess")
        assert observation.completed
        assert observation.result.violations == []

    def test_unknown_mode_rejected(self):
        runner = SandboxRunner()
        with pytest.raises(SandboxError):
            runner.run("bank", "x = 1", mode="warp-drive")

    def test_subprocess_run_round_trips_result(self):
        runner = SandboxRunner(IntegrationConfig(workload_iterations=10, test_timeout_seconds=30))
        observation = runner.run("kvstore", get_target("kvstore").build_source(), mode="subprocess")
        assert observation.completed
        assert observation.result.target == "kvstore"

    def test_subprocess_timeout_detected(self):
        hang_source = get_target("kvstore").build_source() + (
            "\n_original_put = put\n"
            "def put(key, value):\n"
            "    while True:\n"
            "        pass\n"
        )
        runner = SandboxRunner(IntegrationConfig(workload_iterations=10, test_timeout_seconds=3))
        observation = runner.run("kvstore", hang_source, mode="subprocess")
        assert observation.timed_out
        assert observation.result is None


class TestFailureClassifier:
    def make_baseline(self, detected_errors=2, duration=0.05):
        return TargetRunResult(
            target="t", completed=True, duration_seconds=duration,
            metrics={"detected_errors": detected_errors, "ops": 10},
            detected_errors=detected_errors,
        )

    def test_timeout_is_hang(self):
        classification = FailureClassifier().classify(
            RunObservation(result=None, timed_out=True), self.make_baseline()
        )
        assert classification.failure_mode is FailureMode.HANG

    def test_unhandled_exception_is_crash(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=False, duration_seconds=0.01,
                                   error_type="KeyError", error_message="boom")
        )
        classification = FailureClassifier().classify(observation, self.make_baseline())
        assert classification.failure_mode is FailureMode.CRASH
        assert "KeyError" in classification.reason

    def test_violations_are_silent_corruption(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=True, duration_seconds=0.05,
                                   violations=["ledger off by 3"], metrics={"detected_errors": 2},
                                   detected_errors=2)
        )
        classification = FailureClassifier().classify(observation, self.make_baseline())
        assert classification.failure_mode is FailureMode.SILENT_DATA_CORRUPTION

    def test_extra_detected_errors_are_error_detected(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=True, duration_seconds=0.05,
                                   metrics={"detected_errors": 9}, detected_errors=9)
        )
        classification = FailureClassifier().classify(observation, self.make_baseline())
        assert classification.failure_mode is FailureMode.ERROR_DETECTED

    def test_slowdown_is_degraded(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=True, duration_seconds=1.5,
                                   metrics={"detected_errors": 2}, detected_errors=2)
        )
        classification = FailureClassifier(ClassificationThresholds(slowdown_factor=3.0)).classify(
            observation, self.make_baseline(duration=0.05)
        )
        assert classification.failure_mode is FailureMode.DEGRADED

    def test_benign_run_is_no_failure_and_not_activated(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=True, duration_seconds=0.05,
                                   metrics={"detected_errors": 2, "ops": 10}, detected_errors=2)
        )
        classification = FailureClassifier().classify(observation, self.make_baseline())
        assert classification.failure_mode is FailureMode.NO_FAILURE
        assert not classification.activated

    def test_metric_drift_marks_activation_without_failure(self):
        observation = RunObservation(
            result=TargetRunResult(target="t", completed=True, duration_seconds=0.05,
                                   metrics={"detected_errors": 2, "ops": 7}, detected_errors=2)
        )
        classification = FailureClassifier().classify(observation, self.make_baseline())
        assert classification.failure_mode is FailureMode.NO_FAILURE
        assert classification.activated


class TestFaultIntegrator:
    def test_integrate_applied_fault(self, ecommerce_faults):
        integrator = FaultIntegrator()
        integrated = integrator.integrate_applied(get_target("ecommerce"), ecommerce_faults[0])
        assert integrated.module_source != integrated.original_source
        assert "raise TimeoutError" in integrated.diff

    def test_integrate_applied_wrong_target_rejected(self, ecommerce_faults):
        integrator = FaultIntegrator()
        with pytest.raises(IntegrationError):
            integrator.integrate_applied(get_target("bank"), ecommerce_faults[0])

    def test_integrate_generated_snippet_by_splicing(self):
        target = get_target("ecommerce")
        spec = FaultSpec(target=TargetLocation(function="send_confirmation"), description="net fail")
        fault = GeneratedFault(
            fault_id="g1",
            spec=spec,
            code="def send_confirmation(order_id):\n    raise ConnectionError('injected outage')\n",
        )
        integrated = FaultIntegrator().integrate_generated(target, fault)
        assert "injected outage" in integrated.module_source
        assert "def process_transaction" in integrated.module_source

    def test_integrate_generated_without_target_function_fails(self):
        target = get_target("ecommerce")
        fault = GeneratedFault(fault_id="g2", spec=FaultSpec(description="x"), code="def orphan():\n    pass\n")
        with pytest.raises(IntegrationError):
            FaultIntegrator().integrate_generated(target, fault)

    def test_workspace_created_when_manager_supplied(self, tmp_path, ecommerce_faults):
        manager = WorkspaceManager(base_dir=tmp_path)
        integrator = FaultIntegrator(manager)
        integrated = integrator.integrate_applied(get_target("ecommerce"), ecommerce_faults[0])
        assert integrated.workspace is not None
        assert integrated.workspace.read_module() == integrated.module_source


class TestExperimentRunner:
    def test_batch_produces_expected_failure_modes(self, ecommerce_faults):
        runner = ExperimentRunner("ecommerce", config=IntegrationConfig(workload_iterations=25))
        batch = runner.run_batch_applied(ecommerce_faults, mode="inprocess")
        modes = {record.outcome.fault_id.split("@")[0]: record.outcome.failure_mode for record in batch.records}
        assert modes["raise_timeout"] is FailureMode.CRASH
        assert modes["arithmetic_corruption"] is FailureMode.SILENT_DATA_CORRUPTION
        assert modes["negate_condition"] is FailureMode.ERROR_DETECTED
        assert modes["remove_call"] is FailureMode.SILENT_DATA_CORRUPTION

    def test_baseline_cached(self):
        runner = ExperimentRunner("bank", config=IntegrationConfig(workload_iterations=10))
        assert runner.baseline is runner.baseline

    def test_generated_fault_experiment(self, prepared_pipeline):
        target = get_target("ecommerce")
        fault = prepared_pipeline.inject(
            "Simulate a timeout in process_transaction causing an unhandled exception",
            code=target.build_source(),
        )
        runner = ExperimentRunner(target, config=IntegrationConfig(workload_iterations=15))
        record = runner.run_generated(fault, mode="inprocess")
        assert record.outcome.failure_mode in (FailureMode.CRASH, FailureMode.ERROR_DETECTED)
        assert record.outcome.activated

    def test_integration_failure_recorded_not_raised(self):
        runner = ExperimentRunner("bank", config=IntegrationConfig(workload_iterations=10))
        fault = GeneratedFault(fault_id="bad", spec=FaultSpec(description="x"), code="def nothing():\n    pass\n")
        record = runner.run_generated(fault, mode="inprocess")
        assert record.outcome.details.get("integration_failed")
        assert record.outcome.failure_mode is FailureMode.NO_FAILURE


class TestCampaignReport:
    def test_aggregation_and_table(self, ecommerce_faults):
        runner = ExperimentRunner("ecommerce", config=IntegrationConfig(workload_iterations=20))
        batch = runner.run_batch_applied(ecommerce_faults, mode="inprocess")
        report = CampaignReport.from_batches([batch], name="unit")
        assert report.total == len(ecommerce_faults)
        assert 0.0 <= report.failure_rate <= 1.0
        distribution = report.failure_mode_distribution()
        assert sum(distribution.values()) == report.total
        table = report.to_table()
        assert "ecommerce" in table
        assert "crash" in table
        summary = report.summary()
        assert summary["targets"]["ecommerce"]["total"] == report.total
        import json

        json.loads(report.to_json())
