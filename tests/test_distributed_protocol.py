"""Wire-protocol tests for the distributed execution plane.

The frame codec follows the strict conventions of the ``repro.api`` wire
layer: unknown kinds, unknown fields, and malformed values are rejected with
``RequestError`` at the boundary instead of being silently ignored.  These
tests are pure unit tests (plus a ``socketpair`` round-trip) — no worker
processes are spawned.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.distributed import (
    FRAME_KINDS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    GoodbyeFrame,
    HeartbeatFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    encode_frame,
    frame_from_dict,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.errors import ConfigurationError, RequestError

TASK = {"task_id": "0", "target": "bank", "source": "x = 1\n", "seed": 3}

FRAMES = [
    HelloFrame(worker_id="w1", capacity=2),
    RegisterFrame(worker_id="w1", heartbeat_interval_seconds=0.25),
    LeaseFrame(lease_id=7, tasks=(TASK,), deadline_seconds=12.5),
    ResultFrame(lease_id=7, results={"0": {"status": "ok", "result": {"completed": True}}}),
    HeartbeatFrame(worker_id="w1", lease_id=7),
    HeartbeatFrame(worker_id="w1"),
    GoodbyeFrame(reason="drained"),
]


class TestFrameCodec:
    @pytest.mark.parametrize("frame", FRAMES, ids=lambda f: f.kind)
    def test_frames_round_trip_through_dicts(self, frame):
        rebuilt = frame_from_dict(frame.to_dict())
        assert rebuilt == frame
        assert rebuilt.to_dict() == frame.to_dict()

    def test_all_kinds_are_registered(self):
        assert FRAME_KINDS == ("goodbye", "heartbeat", "hello", "lease", "register", "result")

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(RequestError, match="unknown frame kind"):
            frame_from_dict({"kind": "teleport"})

    def test_missing_kind_is_rejected(self):
        with pytest.raises(RequestError, match="unknown frame kind"):
            frame_from_dict({"worker_id": "w1"})

    def test_non_object_frame_is_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            frame_from_dict(["hello"])

    def test_unknown_field_is_rejected(self):
        data = HelloFrame(worker_id="w1", capacity=1).to_dict()
        data["surprise"] = 1
        with pytest.raises(RequestError, match="unknown hello frame fields"):
            frame_from_dict(data)

    def test_missing_required_field_is_rejected(self):
        with pytest.raises(RequestError, match="malformed hello frame"):
            frame_from_dict({"kind": "hello", "capacity": 1})

    def test_wrong_field_type_is_rejected(self):
        with pytest.raises(RequestError, match="must be int"):
            frame_from_dict({"kind": "hello", "worker_id": "w1", "capacity": "two"})

    def test_bool_is_not_an_acceptable_int(self):
        with pytest.raises(RequestError, match="must be int"):
            frame_from_dict({"kind": "hello", "worker_id": "w1", "capacity": True})

    def test_protocol_version_mismatch_is_rejected(self):
        data = HelloFrame(worker_id="w1", capacity=1).to_dict()
        data["protocol_version"] = PROTOCOL_VERSION + 1
        with pytest.raises(RequestError, match="protocol version mismatch"):
            frame_from_dict(data)

    def test_lease_requires_tasks_with_ids(self):
        with pytest.raises(RequestError, match="at least one task"):
            LeaseFrame(lease_id=1, tasks=(), deadline_seconds=1.0)
        with pytest.raises(RequestError, match="task_id"):
            LeaseFrame(lease_id=1, tasks=({"source": "x"},), deadline_seconds=1.0)
        with pytest.raises(RequestError, match="deadline_seconds must be positive"):
            LeaseFrame(lease_id=1, tasks=(TASK,), deadline_seconds=0.0)

    def test_result_payloads_require_a_status(self):
        with pytest.raises(RequestError, match="status"):
            ResultFrame(lease_id=1, results={"0": {"result": {}}})

    def test_capacity_must_be_positive(self):
        with pytest.raises(RequestError, match="capacity must be positive"):
            HelloFrame(worker_id="w1", capacity=0)


class TestSocketFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    @pytest.mark.parametrize("frame", FRAMES, ids=lambda f: f.kind)
    def test_frames_round_trip_over_a_socket(self, frame):
        left, right = self._pair()
        try:
            send_frame(left, frame)
            assert recv_frame(right) == frame
        finally:
            left.close()
            right.close()

    def test_back_to_back_frames_are_delimited(self):
        left, right = self._pair()
        try:
            for frame in FRAMES:
                send_frame(left, frame)
            for frame in FRAMES:
                assert recv_frame(right) == frame
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_connection_error(self):
        left, right = self._pair()
        try:
            left.sendall(encode_frame(GoodbyeFrame(reason="x"))[:3])
            left.close()
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_announced_length_is_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(RequestError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_invalid_json_payload_is_rejected(self):
        left, right = self._pair()
        try:
            payload = b"{not json"
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(RequestError, match="not valid JSON"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestParseAddress:
    def test_parses_host_and_port(self):
        assert parse_address("127.0.0.1:7001") == ("127.0.0.1", 7001)
        assert parse_address("[::1]:7001") == ("::1", 7001)

    def test_rejects_malformed_addresses(self):
        for bad in ("localhost", ":7001", "host:", "host:abc", "host:0", "host:70000"):
            with pytest.raises(ConfigurationError):
                parse_address(bad)
