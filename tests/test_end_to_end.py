"""Cross-module integration tests exercising the whole library together."""

from __future__ import annotations

import ast

import pytest

from repro.core import RefinementSession
from repro.integration import ExperimentRunner
from repro.config import IntegrationConfig
from repro.rlhf import tester_pool
from repro.targets import all_targets, get_target
from repro.types import FailureMode, FaultType


class TestDescriptionsToOutcomes:
    """NL description -> spec -> generation -> integration -> failure mode."""

    @pytest.mark.parametrize(
        "description,target_name,expected_modes",
        [
            (
                "Simulate a timeout in process_transaction causing an unhandled exception",
                "ecommerce",
                {FailureMode.CRASH, FailureMode.ERROR_DETECTED},
            ),
            (
                "Silently corrupt the total computed by compute_total without raising any error",
                "ecommerce",
                {FailureMode.SILENT_DATA_CORRUPTION},
            ),
            (
                "Make the withdraw function fail with a network failure",
                "bank",
                {FailureMode.CRASH, FailureMode.ERROR_DETECTED},
            ),
            (
                "Add a delay of 30 milliseconds to the put function",
                "kvstore",
                {FailureMode.DEGRADED, FailureMode.NO_FAILURE},
            ),
        ],
    )
    def test_generated_fault_produces_expected_failure_mode(
        self, prepared_pipeline, description, target_name, expected_modes
    ):
        target = get_target(target_name)
        fault = prepared_pipeline.inject(description, code=target.build_source())
        record = prepared_pipeline.integrate_and_test(fault, target, mode="inprocess")
        assert record.outcome.failure_mode in expected_modes

    def test_every_target_accepts_a_generated_timeout_fault(self, prepared_pipeline):
        for target in all_targets():
            functions = target.functions()
            description = f"Simulate a timeout in the {functions[0]} function causing an unhandled exception"
            fault = prepared_pipeline.inject(description, code=target.build_source())
            ast.parse(fault.code)
            assert fault.spec.fault_type is FaultType.TIMEOUT
            record = prepared_pipeline.integrate_and_test(fault, target, mode="inprocess")
            assert record.outcome.activated or record.outcome.failure_mode is FailureMode.NO_FAILURE


class TestFeedbackLoopEndToEnd:
    def test_retry_feedback_changes_failure_mode(self, prepared_pipeline):
        """The paper's claim in action: feedback changes the tested behaviour.

        The unhandled timeout crashes the workload; after the tester asks for a
        retry mechanism, the injected fault recovers and the crash disappears.
        """
        target = get_target("ecommerce")
        runner = ExperimentRunner(target, config=IntegrationConfig(workload_iterations=15))
        session = RefinementSession(
            prepared_pipeline,
            "Simulate a timeout in process_transaction causing an unhandled exception",
            code=target.build_source(),
        )
        first = session.propose()
        crash = runner.run_generated(first.fault, mode="inprocess")
        assert crash.outcome.failure_mode is FailureMode.CRASH

        second = session.give_feedback("introduce a retry mechanism instead of just logging the error")
        recovered = runner.run_generated(second.fault, mode="inprocess")
        assert recovered.outcome.failure_mode is not FailureMode.CRASH

    def test_simulated_testers_drive_distinct_outcomes(self, prepared_pipeline):
        target = get_target("ecommerce")
        description = "Simulate a timeout in process_transaction causing an unhandled exception"
        handlings = set()
        for tester in tester_pool()[:2]:
            session = RefinementSession(prepared_pipeline, description, code=target.build_source())
            final = session.auto_refine(tester, max_iterations=3)
            handlings.add(final.decisions.handling)
        assert len(handlings) >= 1  # both sessions converge to a concrete handling


class TestDatasetToModelEndToEnd:
    def test_prepared_policy_beats_untrained_policy_on_heldout_specs(
        self, prepared_pipeline, fast_pipeline_config
    ):
        from repro import NeuralFaultInjector
        from repro.llm import FaultGenerator, reference_decisions
        from repro.config import ModelConfig
        from repro.eval import decision_accuracy

        untrained = FaultGenerator(ModelConfig(constrain_to_spec=False))
        texts = [
            "make validate_cart silently swallow errors",
            "introduce an off-by-one error in the loop of compute_total",
            "make apply_discount return a wrong value",
        ]
        source = get_target("ecommerce").build_source()
        trained_policy = prepared_pipeline.generator
        trained_constrain = trained_policy.config.constrain_to_spec
        trained_policy.config.constrain_to_spec = False
        try:
            trained_score = 0.0
            untrained_score = 0.0
            for text in texts:
                spec, context = prepared_pipeline.define_fault(text, code=source)
                prompt = prepared_pipeline.build_prompt(spec, context)
                expected = reference_decisions(spec).to_dict()
                trained_score += decision_accuracy(
                    trained_policy.generate(prompt).decisions.to_dict(), expected
                )
                untrained_score += decision_accuracy(
                    untrained.generate(prompt).decisions.to_dict(), expected
                )
        finally:
            trained_policy.config.constrain_to_spec = trained_constrain
        assert trained_score >= untrained_score
