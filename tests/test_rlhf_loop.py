"""Tests for simulated testers, policy optimisation, and the RLHF trainer."""

from __future__ import annotations

import pytest

from repro.config import ModelConfig, RLHFConfig
from repro.llm import FaultGenerator, reference_decisions
from repro.rlhf import (
    DEFAULT_PROFILES,
    PolicyOptimizer,
    PreferenceProfile,
    RLHFTrainer,
    RewardedSample,
    SimulatedTester,
    spec_with_feedback,
    tester_pool,
)
from repro.types import HandlingStyle, TriggerKind


@pytest.fixture()
def prompts(extractor, analyzer, prompt_builder, sample_module):
    texts = [
        "simulate a timeout in process_transaction causing an unhandled exception",
        "introduce a race condition in process_transaction under concurrent checkouts",
        "make compute_total silently corrupt the computed total",
    ]
    built = []
    for text in texts:
        spec = extractor.extract_from_text(text, sample_module)
        context = analyzer.analyze(sample_module)
        analyzer.select_function(context, text, hint=spec.target.function)
        built.append(prompt_builder.build(spec, context))
    return built


class TestSimulatedTester:
    def test_expectation_respects_profile(self, sample_prompt):
        tester = SimulatedTester(profile=PreferenceProfile(name="r", preferred_handling=HandlingStyle.RETRY))
        expected = tester.expectation(sample_prompt.spec)
        assert expected.handling == "retry"

    def test_perfect_candidate_gets_top_rating(self, fault_generator, sample_prompt):
        tester = SimulatedTester()
        expected = tester.expectation(sample_prompt.spec)
        candidate = fault_generator.render_decisions(sample_prompt, expected)
        assert tester.rate(sample_prompt.spec, candidate) == pytest.approx(5.0)
        review = tester.review(sample_prompt.spec, candidate)
        assert review.accept
        assert review.critique == ""

    def test_mismatch_produces_actionable_critique(self, fault_generator, sample_prompt):
        tester = SimulatedTester(profile=PreferenceProfile(name="r", preferred_handling=HandlingStyle.RETRY))
        wrong = fault_generator.render_decisions(sample_prompt, reference_decisions(sample_prompt.spec))
        review = tester.review(sample_prompt.spec, wrong)
        assert not review.accept
        assert "retry" in review.critique

    def test_template_mismatch_mentioned_first(self, fault_generator, sample_prompt):
        tester = SimulatedTester()
        from repro.llm import DecisionVector

        wrong = fault_generator.render_decisions(
            sample_prompt,
            DecisionVector(template="memory_leak", trigger="always", handling="unhandled",
                           placement="body_start", severity="medium"),
        )
        critique = tester.critique(sample_prompt.spec, wrong)
        assert "timeout" in critique

    def test_rank_orders_by_rating(self, fault_generator, sample_prompt):
        tester = SimulatedTester()
        candidates = fault_generator.candidates(sample_prompt, count=4)
        ranked = tester.rank(sample_prompt.spec, candidates)
        ratings = [tester.rate(sample_prompt.spec, candidate) for candidate in ranked]
        assert ratings == sorted(ratings, reverse=True)

    def test_tester_pool_has_default_profiles(self):
        pool = tester_pool()
        assert len(pool) == len(DEFAULT_PROFILES)
        assert {tester.profile.name for tester in pool} == {profile.name for profile in DEFAULT_PROFILES}

    def test_spec_with_feedback_updates_handling(self, sample_prompt):
        updated = spec_with_feedback(sample_prompt.spec, {"handling": "retry", "wants_retry": True})
        assert updated.handling is HandlingStyle.RETRY
        assert updated.directives["wants_retry"]
        # the original spec is not mutated
        assert sample_prompt.spec.handling is HandlingStyle.UNHANDLED


class TestPolicyOptimizer:
    def test_update_moves_policy_towards_rewarded_decisions(self, sample_prompt):
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        optimizer = PolicyOptimizer(generator.policy, generator.encoder, RLHFConfig(policy_learning_rate=0.3))
        good = reference_decisions(sample_prompt.spec)
        features = generator.encoder.encode(sample_prompt)
        before = generator.policy.log_probability(features, good)
        for _ in range(10):
            candidates = generator.candidates(sample_prompt, count=4, temperature=1.5)
            samples = [
                RewardedSample(
                    prompt=sample_prompt,
                    decisions=candidate.decisions,
                    reward=1.0 if candidate.decisions.template == good.template else -1.0,
                )
                for candidate in candidates
            ]
            optimizer.update(samples)
        after = generator.policy.log_probability(features, good)
        assert after > before

    def test_empty_update_is_noop(self, fault_generator):
        optimizer = PolicyOptimizer(fault_generator.policy, fault_generator.encoder)
        stats = optimizer.update([])
        assert stats.samples == 0

    def test_kl_is_zero_on_first_update_against_fresh_reference(self, fault_generator, sample_prompt):
        optimizer = PolicyOptimizer(fault_generator.policy, fault_generator.encoder)
        candidate = fault_generator.generate(sample_prompt)
        stats = optimizer.update(
            [RewardedSample(prompt=sample_prompt, decisions=candidate.decisions, reward=1.0)]
        )
        assert stats.mean_kl == pytest.approx(0.0, abs=1e-9)
        assert optimizer.history[-1] is stats

    def test_reset_reference(self, fault_generator, sample_prompt):
        optimizer = PolicyOptimizer(fault_generator.policy, fault_generator.encoder)
        candidate = fault_generator.generate(sample_prompt)
        optimizer.update([RewardedSample(prompt=sample_prompt, decisions=candidate.decisions, reward=1.0)])
        optimizer.reset_reference()
        features = fault_generator.encoder.encode(sample_prompt)
        assert fault_generator.policy.kl_divergence(features, optimizer.reference) == pytest.approx(0.0, abs=1e-9)


class TestRLHFTrainer:
    def test_requires_at_least_one_tester(self, fault_generator):
        with pytest.raises(ValueError):
            RLHFTrainer(fault_generator, testers=[])

    def test_run_produces_history_and_preferences(self, prompts):
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        trainer = RLHFTrainer(
            generator,
            tester_pool(),
            config=RLHFConfig(iterations=2, candidates_per_iteration=3),
        )
        report = trainer.run(prompts)
        assert len(report.iterations) == 2
        assert report.preference_pairs > 0
        assert all(0.0 <= stats.alignment <= 1.0 for stats in report.iterations)
        assert all(0.0 <= stats.reward_model_accuracy <= 1.0 for stats in report.iterations)

    def test_alignment_improves_or_holds_over_training(self, prompts):
        generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
        trainer = RLHFTrainer(
            generator,
            [SimulatedTester()],
            config=RLHFConfig(iterations=3, candidates_per_iteration=4, policy_learning_rate=0.15),
        )
        initial = trainer.alignment(prompts)
        report = trainer.run(prompts)
        assert report.final_alignment >= initial - 0.05

    def test_alignment_of_empty_prompt_list_is_zero(self, fault_generator):
        trainer = RLHFTrainer(fault_generator, tester_pool(), config=RLHFConfig(iterations=1))
        assert trainer.alignment([]) == 0.0
