"""Tests for named-entity recognition and relation extraction."""

from __future__ import annotations

from repro.nlp import EntityRecognizer, RelationExtractor, entities_by_label, relations_of
from repro.types import EntityLabel


class TestEntityRecognizer:
    def setup_method(self):
        self.recognizer = EntityRecognizer()

    def labels_for(self, text, known=None):
        grouped = entities_by_label(self.recognizer.recognize(text, known_functions=known or []))
        return {label: [entity.text for entity in entities] for label, entities in grouped.items()}

    def test_fault_keywords_multiword(self):
        labels = self.labels_for("introduce a race condition between processes")
        assert "race condition" in labels[EntityLabel.FAULT_KEYWORD]

    def test_components_recognised(self):
        labels = self.labels_for("the database service becomes unreachable")
        assert "database" in labels[EntityLabel.COMPONENT]

    def test_function_identifiers(self):
        labels = self.labels_for("a fault within the process_transaction function")
        assert "process_transaction" in labels[EntityLabel.FUNCTION]

    def test_known_function_names_matched_without_underscores(self):
        labels = self.labels_for("make checkout fail", known=["checkout", "refund_order"])
        assert "checkout" in labels[EntityLabel.FUNCTION]

    def test_exception_names(self):
        labels = self.labels_for("it should raise a ConnectionError instead")
        assert "ConnectionError" in labels[EntityLabel.EXCEPTION_NAME]

    def test_condition_clause(self):
        labels = self.labels_for("fail when the cart is empty, otherwise succeed")
        assert any("when the cart is empty" in text for text in labels[EntityLabel.CONDITION])

    def test_quantities_with_units(self):
        labels = self.labels_for("add a delay of 200 milliseconds to the call")
        assert any("200" in text for text in labels[EntityLabel.QUANTITY])

    def test_actions(self):
        labels = self.labels_for("inject a timeout into the gateway")
        assert "inject" in [text.lower() for text in labels[EntityLabel.ACTION]]

    def test_entity_offsets_are_correct(self):
        text = "introduce a memory leak in the cache"
        for entity in self.recognizer.recognize(text):
            assert text[entity.start : entity.end] == entity.text

    def test_duplicate_containment_removed(self):
        entities = self.recognizer.recognize("an unhandled exception occurs")
        keyword_texts = [e.text for e in entities if e.label is EntityLabel.FAULT_KEYWORD]
        assert keyword_texts.count("unhandled exception") == 1


class TestRelationExtractor:
    def setup_method(self):
        self.extractor = RelationExtractor()

    def test_action_object_relation(self):
        relations = self.extractor.extract("introduce a race condition in the scheduler")
        objects = [r.dependent for r in relations_of(relations, "object")]
        assert any("race condition" in dependent for dependent in objects)

    def test_location_relation_points_at_function(self):
        relations = self.extractor.extract("a timeout occurs within the process_transaction function")
        locations = [r.dependent for r in relations_of(relations, "location")]
        assert any("process_transaction" in location for location in locations)

    def test_subject_failure_relation(self):
        relations = self.extractor.extract("the database transaction fails under load")
        failing = [r.head for r in relations_of(relations, "fails")]
        assert any("transaction" in head for head in failing)

    def test_no_relations_in_contentless_text(self):
        assert self.extractor.extract("the and of") == []

    def test_relation_to_tuple(self):
        relations = self.extractor.extract("introduce a timeout in checkout")
        assert all(len(relation.to_tuple()) == 3 for relation in relations)
