"""Tests for the operator registry, locator, fault-load DSL, and injector."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, InjectionError, NoInjectionPointError
from repro.injection import (
    FaultLoad,
    FaultLoadEntry,
    InjectionPointLocator,
    ProgrammableInjector,
    all_operators,
    fault_type_coverage,
    get_operator,
    operator_names,
    operators_for_fault_type,
)
from repro.types import FaultType


class TestRegistry:
    def test_registry_has_many_operators(self):
        assert len(operator_names()) >= 25

    def test_every_operator_has_unique_name(self):
        names = operator_names()
        assert len(names) == len(set(names))

    def test_get_operator_unknown_raises(self):
        with pytest.raises(InjectionError):
            get_operator("not_an_operator")

    def test_operators_for_fault_type(self):
        race_operators = operators_for_fault_type(FaultType.RACE_CONDITION)
        assert {op.name for op in race_operators} >= {"remove_lock", "widen_race_window"}

    def test_fault_type_coverage_spans_most_of_the_taxonomy(self):
        covered = set(fault_type_coverage())
        concrete = set(FaultType.concrete())
        # Only deadlocks are realised via the generation grammar rather than an
        # AST operator.
        assert concrete - covered == {FaultType.DEADLOCK}

    def test_every_operator_declares_a_concrete_fault_type(self):
        for operator in all_operators():
            assert operator.fault_type is not FaultType.UNKNOWN
            assert operator.summary


class TestLocator:
    def test_scan_groups_by_operator_and_function(self, sample_module):
        report = InjectionPointLocator().scan(sample_module)
        assert len(report) > 20
        assert "process_transaction" in report.by_function()
        assert "raise_exception" in report.by_operator()

    def test_scan_for_fault_type_is_subset(self, sample_module):
        locator = InjectionPointLocator()
        subset = locator.scan_for_fault_type(sample_module, FaultType.WRONG_CONDITION)
        full = locator.scan(sample_module)
        assert 0 < len(subset) < len(full)
        assert all(get_operator(p.operator).fault_type is FaultType.WRONG_CONDITION for p in subset.points)

    def test_scan_function_restricts_points(self, sample_module):
        report = InjectionPointLocator().scan_function(sample_module, "compute_total")
        assert report.points
        assert all(point.function == "compute_total" for point in report.points)

    def test_locator_with_custom_operator_subset(self, sample_module):
        locator = InjectionPointLocator([get_operator("negate_condition")])
        report = locator.scan(sample_module)
        assert {point.operator for point in report.points} == {"negate_condition"}


class TestFaultLoad:
    def test_fluent_construction(self):
        load = FaultLoad().add("raise_timeout", "process_*").add("negate_condition")
        assert len(load) == 2
        assert load.operators() == ["raise_timeout", "negate_condition"]

    def test_unknown_operator_rejected_at_definition_time(self):
        with pytest.raises(InjectionError):
            FaultLoad().add("bogus_operator")

    def test_non_positive_max_points_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultLoadEntry(operator="raise_timeout", max_points=0)

    def test_json_round_trip(self):
        load = FaultLoad(name="demo").add("raise_timeout", "pay*", {"message": "x"}, max_points=2)
        restored = FaultLoad.from_json(load.to_json())
        assert restored.name == "demo"
        assert restored.entries[0].parameters == {"message": "x"}
        assert restored.entries[0].max_points == 2
        json.loads(load.to_json())

    def test_entry_matching_uses_patterns(self, sample_module):
        entry = FaultLoadEntry(operator="raise_exception", function_pattern="process_*")
        points = get_operator("raise_exception").find_points(sample_module)
        matching = [point for point in points if entry.matches(point)]
        assert all(point.function.startswith("process_") for point in matching)
        assert matching


class TestProgrammableInjector:
    def test_plan_respects_max_points(self, sample_module):
        injector = ProgrammableInjector()
        load = FaultLoad().add("raise_exception", "*", max_points=2)
        plan = injector.plan(sample_module, load)
        assert len(plan) == 2

    def test_inject_returns_applied_faults_with_patches(self, sample_module):
        injector = ProgrammableInjector()
        load = FaultLoad().add("raise_timeout", "process_transaction").add("negate_condition", "validate")
        faults = injector.inject(sample_module, load)
        assert len(faults) == 2
        for fault in faults:
            assert fault.patch.mutated != sample_module
            assert fault.description

    def test_inject_fault_type_targets_requested_function(self, sample_module):
        injector = ProgrammableInjector()
        applied = injector.inject_fault_type(
            sample_module, FaultType.WRONG_CONDITION, function_name="validate"
        )
        assert applied.point.function == "validate"
        assert applied.fault_type is FaultType.WRONG_CONDITION

    def test_inject_fault_type_without_point_raises(self):
        injector = ProgrammableInjector()
        # No AST operator realises deadlocks (they are rendered by the grammar),
        # so asking the injector for one must fail loudly rather than silently.
        with pytest.raises(NoInjectionPointError):
            injector.inject_fault_type("def f():\n    return 1\n", FaultType.DEADLOCK)

    def test_exhaustive_mutants_all_differ_from_original(self, sample_module):
        injector = ProgrammableInjector()
        mutants = injector.exhaustive_mutants(sample_module, max_mutants=25)
        assert len(mutants) == 25
        assert all(mutant.patch.mutated != sample_module for mutant in mutants)

    def test_exhaustive_mutants_respects_budget(self, sample_module):
        injector = ProgrammableInjector()
        assert len(injector.exhaustive_mutants(sample_module, max_mutants=5)) == 5

    def test_plans_are_deterministic_for_a_seed(self, sample_module):
        load = FaultLoad().add("wrong_argument", "*", max_points=3)
        first = ProgrammableInjector().plan(sample_module, load)
        second = ProgrammableInjector().plan(sample_module, load)
        assert [(op, p.lineno) for op, p, _ in first.items] == [
            (op, p.lineno) for op, p, _ in second.items
        ]
