"""Shared fixtures for the test suite.

Expensive artefacts (the prepared pipeline, the generated dataset) are
session-scoped; everything else is rebuilt per test to keep tests independent.
"""

from __future__ import annotations

import pytest

from repro import (
    DatasetConfig,
    IntegrationConfig,
    ModelConfig,
    NeuralFaultInjector,
    PipelineConfig,
    RLHFConfig,
    SFTConfig,
)
from repro.llm import FaultGenerator
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.targets import get_target

#: A module with a rich injection surface: guards, loops, locks, try/except,
#: resource release calls, returns, network- and disk-shaped calls.
SAMPLE_MODULE = '''
"""Sample order-processing module used throughout the tests."""

import threading
import time

_lock = threading.Lock()
_orders = {}


class GatewayError(Exception):
    pass


def validate(cart):
    if not cart:
        raise ValueError("cart is empty")
    for item in cart:
        if item["qty"] <= 0:
            raise ValueError("bad quantity")


def compute_total(cart, discount=0.0):
    total = 0.0
    for index in range(len(cart)):
        total = total + cart[index]["price"] * cart[index]["qty"]
    return total - total * discount


def charge(amount, retries=3):
    if amount <= 0:
        raise GatewayError("invalid amount")
    return {"charged": amount}


def send_receipt(order_id):
    return True


def process_transaction(transaction_details):
    """Process a purchase end to end."""
    cart = transaction_details["cart"]
    validate(cart)
    total = compute_total(cart)
    session = open("/dev/null", "w")
    try:
        charge(total)
        with _lock:
            order_id = len(_orders) + 1
            _orders[order_id] = total
        send_receipt(order_id)
    except GatewayError as error:
        print("charge failed:", error)
        raise
    finally:
        session.close()
    return {"order_id": order_id, "total": total}
'''

RUNNING_EXAMPLE_TEXT = (
    "Simulate a scenario where a database transaction fails due to a timeout, "
    "causing an unhandled exception within the process_transaction function."
)


@pytest.fixture(scope="session")
def sample_module() -> str:
    return SAMPLE_MODULE


@pytest.fixture(scope="session")
def running_example_text() -> str:
    return RUNNING_EXAMPLE_TEXT


@pytest.fixture()
def extractor() -> FaultSpecExtractor:
    return FaultSpecExtractor()


@pytest.fixture()
def analyzer() -> CodeAnalyzer:
    return CodeAnalyzer()


@pytest.fixture()
def prompt_builder() -> PromptBuilder:
    return PromptBuilder()


@pytest.fixture()
def fault_generator() -> FaultGenerator:
    return FaultGenerator(ModelConfig())


@pytest.fixture()
def sample_prompt(extractor, analyzer, prompt_builder, sample_module, running_example_text):
    """A fully built generation prompt for the running-example description."""
    spec = extractor.extract_from_text(running_example_text, sample_module)
    context = analyzer.analyze(sample_module)
    analyzer.select_function(context, running_example_text, hint=spec.target.function)
    return prompt_builder.build(spec, context)


@pytest.fixture(scope="session")
def fast_pipeline_config() -> PipelineConfig:
    return PipelineConfig(
        model=ModelConfig(),
        dataset=DatasetConfig(samples_per_target=15),
        sft=SFTConfig(epochs=3),
        rlhf=RLHFConfig(iterations=2, candidates_per_iteration=3),
        integration=IntegrationConfig(workload_iterations=15, test_timeout_seconds=20),
        max_refinement_iterations=3,
    )


@pytest.fixture(scope="session")
def prepared_pipeline(fast_pipeline_config) -> NeuralFaultInjector:
    """A pipeline with dataset generation and SFT already executed (shared)."""
    pipeline = NeuralFaultInjector(fast_pipeline_config)
    pipeline.prepare()
    return pipeline


@pytest.fixture(scope="session")
def ecommerce_target():
    return get_target("ecommerce")


@pytest.fixture(scope="session")
def kvstore_target():
    return get_target("kvstore")
