"""Tests for configuration validation and round-tripping."""

from __future__ import annotations

import argparse

import pytest

from repro.config import (
    DatasetConfig,
    IntegrationConfig,
    ModelConfig,
    PipelineConfig,
    RLHFConfig,
    ServerConfig,
    SFTConfig,
)
from repro.errors import ConfigurationError


class TestModelConfig:
    def test_defaults_are_valid(self):
        config = ModelConfig()
        assert config.feature_dim > 0

    @pytest.mark.parametrize("field,value", [
        ("embedding_dim", 0),
        ("hidden_dim", -1),
        ("feature_dim", 0),
        ("learning_rate", 0.0),
        ("temperature", 0.0),
        ("top_k", 0),
        ("top_p", 1.5),
        ("spec_constraint_threshold", 2.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ModelConfig(**{field: value})

    def test_to_dict_round_trip(self):
        config = ModelConfig(hidden_dim=32, top_k=3)
        rebuilt = ModelConfig(**config.to_dict())
        assert rebuilt.hidden_dim == 32
        assert rebuilt.top_k == 3


class TestScheduleConfigs:
    def test_sft_rejects_non_positive_epochs(self):
        with pytest.raises(ConfigurationError):
            SFTConfig(epochs=0)

    def test_rlhf_rejects_negative_kl(self):
        with pytest.raises(ConfigurationError):
            RLHFConfig(kl_beta=-0.1)

    def test_rlhf_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            RLHFConfig(baseline_momentum=1.0)

    def test_integration_rejects_zero_timeout(self):
        with pytest.raises(ConfigurationError):
            IntegrationConfig(test_timeout_seconds=0)

    def test_dataset_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(samples_per_target=0)


class TestServerConfig:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError, match="shards must be positive"):
            ServerConfig(shards=0)

    def test_rejects_negative_shard_queue_depth(self):
        with pytest.raises(ConfigurationError, match="shard_queue_depth"):
            ServerConfig(shard_queue_depth=-1)

    def test_shard_queue_depth_inherits_the_global_bound(self):
        assert ServerConfig(max_queue_depth=32).resolved_shard_queue_depth() == 32
        assert (
            ServerConfig(max_queue_depth=32, shard_queue_depth=8).resolved_shard_queue_depth()
            == 8
        )
        # 0 is a real override (shedding disabled per shard), not "unset".
        assert (
            ServerConfig(max_queue_depth=32, shard_queue_depth=0).resolved_shard_queue_depth()
            == 0
        )

    def test_from_args_applies_every_serve_flag(self):
        args = argparse.Namespace(
            host="0.0.0.0", port=9000, max_queue_depth=7, shards=4, shard_queue_depth=3
        )
        config = ServerConfig.from_args(args)
        assert (config.host, config.port) == ("0.0.0.0", 9000)
        assert config.max_queue_depth == 7
        assert (config.shards, config.shard_queue_depth) == (4, 3)

    def test_from_args_keeps_base_values_for_omitted_flags(self):
        base = ServerConfig(host="10.0.0.1", port=8123, shards=2)
        args = argparse.Namespace(host=None, port=None, max_queue_depth=None)
        config = ServerConfig.from_args(args, base=base)
        assert config == base

    def test_from_args_validates_the_combination(self):
        with pytest.raises(ConfigurationError, match="shards must be positive"):
            ServerConfig.from_args(argparse.Namespace(shards=-2))

    def test_shard_child_runs_the_single_engine_topology(self):
        parent = ServerConfig(
            host="0.0.0.0", port=8080, shards=4, max_queue_depth=64, shard_queue_depth=16
        )
        child = parent.shard_child()
        assert (child.host, child.port) == ("127.0.0.1", 0)
        assert child.shards == 1 and child.shard_queue_depth is None
        assert child.max_queue_depth == 16
        # Everything else is inherited unchanged.
        assert child.drain_timeout_seconds == parent.drain_timeout_seconds
        assert child.request_retention == parent.request_retention

    def test_round_trips_through_pipeline_config(self):
        config = PipelineConfig(server=ServerConfig(shards=3, shard_queue_depth=5))
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.server.shards == 3
        assert rebuilt.server.shard_queue_depth == 5


class TestPipelineConfig:
    def test_defaults_compose(self):
        config = PipelineConfig()
        assert config.model.feature_dim == ModelConfig().feature_dim
        assert config.max_refinement_iterations > 0

    def test_rejects_zero_refinement_iterations(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(max_refinement_iterations=0)

    def test_round_trip_through_dict(self):
        config = PipelineConfig(
            model=ModelConfig(hidden_dim=48),
            sft=SFTConfig(epochs=2),
            max_refinement_iterations=7,
        )
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.model.hidden_dim == 48
        assert rebuilt.sft.epochs == 2
        assert rebuilt.max_refinement_iterations == 7

    def test_from_dict_rejects_non_mapping_section(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"model": "not-a-mapping"})
