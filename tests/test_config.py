"""Tests for configuration validation and round-tripping."""

from __future__ import annotations

import pytest

from repro.config import (
    DatasetConfig,
    IntegrationConfig,
    ModelConfig,
    PipelineConfig,
    RLHFConfig,
    SFTConfig,
)
from repro.errors import ConfigurationError


class TestModelConfig:
    def test_defaults_are_valid(self):
        config = ModelConfig()
        assert config.feature_dim > 0

    @pytest.mark.parametrize("field,value", [
        ("embedding_dim", 0),
        ("hidden_dim", -1),
        ("feature_dim", 0),
        ("learning_rate", 0.0),
        ("temperature", 0.0),
        ("top_k", 0),
        ("top_p", 1.5),
        ("spec_constraint_threshold", 2.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ModelConfig(**{field: value})

    def test_to_dict_round_trip(self):
        config = ModelConfig(hidden_dim=32, top_k=3)
        rebuilt = ModelConfig(**config.to_dict())
        assert rebuilt.hidden_dim == 32
        assert rebuilt.top_k == 3


class TestScheduleConfigs:
    def test_sft_rejects_non_positive_epochs(self):
        with pytest.raises(ConfigurationError):
            SFTConfig(epochs=0)

    def test_rlhf_rejects_negative_kl(self):
        with pytest.raises(ConfigurationError):
            RLHFConfig(kl_beta=-0.1)

    def test_rlhf_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            RLHFConfig(baseline_momentum=1.0)

    def test_integration_rejects_zero_timeout(self):
        with pytest.raises(ConfigurationError):
            IntegrationConfig(test_timeout_seconds=0)

    def test_dataset_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(samples_per_target=0)


class TestPipelineConfig:
    def test_defaults_compose(self):
        config = PipelineConfig()
        assert config.model.feature_dim == ModelConfig().feature_dim
        assert config.max_refinement_iterations > 0

    def test_rejects_zero_refinement_iterations(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(max_refinement_iterations=0)

    def test_round_trip_through_dict(self):
        config = PipelineConfig(
            model=ModelConfig(hidden_dim=48),
            sft=SFTConfig(epochs=2),
            max_refinement_iterations=7,
        )
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.model.hidden_dim == 48
        assert rebuilt.sft.epochs == 2
        assert rebuilt.max_refinement_iterations == 7

    def test_from_dict_rejects_non_mapping_section(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"model": "not-a-mapping"})
