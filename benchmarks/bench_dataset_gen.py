"""BENCH_DATASET_GEN — records/sec: serial vs pooled validated dataset generation.

Extends the BENCH_* trajectory beyond campaign throughput
(``bench_throughput.py``) to the second heavy workload: fault-dataset
generation with candidate validation enabled.  Every applied fault candidate
is executed against its target inside the sandbox; the serial seed-style path
pays an interpreter start plus a full ``repro`` import per candidate
(``subprocess`` mode, one worker), while the pooled path executes each
target's whole candidate batch on persistent workers.

The records emitted by both paths must be byte-identical for the same seed —
candidate construction and record synthesis draw from keyed RNG forks, and
validation only filters on load success, which is deterministic across
execution modes.  The pooled path must beat the serial path by >= 2x.
"""

from __future__ import annotations

import time

from repro.config import DatasetConfig, ExecutionConfig
from repro.dataset import DatasetGenerator

from conftest import write_result

SAMPLES_PER_TARGET = 8

CONFIGS = {
    "serial-subprocess": ExecutionConfig(default_mode="subprocess", max_workers=1),
    "pool": ExecutionConfig(default_mode="pool", max_workers=4),
}


def _generate(execution: ExecutionConfig):
    config = DatasetConfig(
        samples_per_target=SAMPLES_PER_TARGET,
        validate_candidates=True,
        validation_timeout_seconds=5.0,
    )
    with DatasetGenerator(config, execution=execution) as generator:
        started = time.perf_counter()
        dataset = generator.generate()
        elapsed = time.perf_counter() - started
        stats = generator.stats.to_dict()
    return dataset, elapsed, stats


def test_pooled_dataset_generation_throughput():
    timings: dict[str, float] = {}
    records: dict[str, list[dict]] = {}
    stats: dict[str, dict] = {}
    for label, execution in CONFIGS.items():
        dataset, elapsed, generation_stats = _generate(execution)
        timings[label] = elapsed
        records[label] = [record.to_dict() for record in dataset]
        stats[label] = generation_stats

    # Byte-identical records for the same seed, whatever executed the batch.
    assert records["pool"] == records["serial-subprocess"]

    serial = timings["serial-subprocess"]
    count = len(records["serial-subprocess"])
    rows = ["config                 seconds   records/sec   speedup-vs-serial"]
    payload = {
        "samples_per_target": SAMPLES_PER_TARGET,
        "records": count,
        "batches": stats["pool"]["batches"],
        "configs": {},
    }
    for label, elapsed in timings.items():
        speedup = serial / elapsed if elapsed else float("inf")
        payload["configs"][label] = {
            "seconds": round(elapsed, 3),
            "records_per_second": round(count / elapsed, 2) if elapsed else None,
            "speedup_vs_serial_subprocess": round(speedup, 2),
        }
        rows.append(
            f"{label:<22} {elapsed:>7.2f}   {count / elapsed:>11.2f}   {speedup:>17.2f}"
        )
    write_result("dataset_gen", payload, table="\n".join(rows))

    # The acceptance bar: pooled validated generation beats the serial path >= 2x.
    assert serial / timings["pool"] >= 2.0, payload
