"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark writes the table or series it regenerates to
``benchmarks/results/<experiment>.json`` (and a readable ``.txt`` next to it)
so that EXPERIMENTS.md can be checked against concrete artefacts after a run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import (
    DatasetConfig,
    IntegrationConfig,
    ModelConfig,
    NeuralFaultInjector,
    PipelineConfig,
    RLHFConfig,
    SFTConfig,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick-mode (CI smoke) runs write to ``results/quick/`` — an ignored
#: scratch directory — so they can never clobber the committed full-mode
#: numbers that ``check_floors.py`` gates CI against.
QUICK_RESULTS_DIR = RESULTS_DIR / "quick"


def write_result(name: str, payload: dict, table: str | None = None) -> None:
    """Persist a benchmark's regenerated table/series under ``benchmarks/results``
    (or ``benchmarks/results/quick`` when ``BENCH_QUICK`` is set)."""
    quick = os.environ.get("BENCH_QUICK", "") not in ("", "0")
    results_dir = QUICK_RESULTS_DIR if quick else RESULTS_DIR
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{name}.json").write_text(json.dumps(payload, indent=2, sort_keys=True))
    if table is not None:
        (results_dir / f"{name}.txt").write_text(table + "\n")
    print(f"\n[{name}]")
    if table:
        print(table)


@pytest.fixture(scope="session")
def bench_config() -> PipelineConfig:
    return PipelineConfig(
        model=ModelConfig(),
        dataset=DatasetConfig(samples_per_target=40, max_faults_per_function=3),
        sft=SFTConfig(epochs=6),
        rlhf=RLHFConfig(iterations=3, candidates_per_iteration=4),
        integration=IntegrationConfig(workload_iterations=25, test_timeout_seconds=20),
        max_refinement_iterations=3,
    )


@pytest.fixture(scope="session")
def prepared_pipeline(bench_config) -> NeuralFaultInjector:
    """A pipeline with the SFI dataset generated and the policy fine-tuned."""
    pipeline = NeuralFaultInjector(bench_config)
    pipeline.prepare()
    return pipeline
