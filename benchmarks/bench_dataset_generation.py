"""T-DATA — on-demand dataset generation with the programmable SFI tool.

Regenerates the Section IV-1 claims: how fast the SFI tool produces documented
fault triples, how diverse the resulting dataset is across fault types and
targets, and how much supervised fine-tuning on that dataset improves the
generator's spec-to-decision accuracy on held-out faults.
"""

from __future__ import annotations

import time

from repro.config import DatasetConfig, ModelConfig, SFTConfig
from repro.dataset import DatasetGenerator, split_dataset
from repro.llm import FaultGenerator, SFTTrainer

from conftest import write_result

SIZES = (20, 40, 80)


def generate_at_size(samples_per_target):
    generator = DatasetGenerator(DatasetConfig(samples_per_target=samples_per_target, max_faults_per_function=4))
    started = time.perf_counter()
    dataset = generator.generate()
    elapsed = time.perf_counter() - started
    return generator, dataset, elapsed


def test_dataset_generation_scaling_and_sft_gain(benchmark):
    scaling_rows = []
    scaling_payload = []
    for size in SIZES[:-1]:
        _generator, dataset, elapsed = generate_at_size(size)
        scaling_rows.append(
            f"samples_per_target={size:3d}: records={len(dataset):4d} "
            f"fault_types={len(dataset.fault_type_counts()):2d} time={elapsed:.2f}s "
            f"({len(dataset) / elapsed:.0f} faults/s)"
        )
        scaling_payload.append(
            {"samples_per_target": size, "records": len(dataset), "seconds": elapsed,
             "fault_types": len(dataset.fault_type_counts())}
        )

    generator, dataset, elapsed = benchmark.pedantic(
        generate_at_size, args=(SIZES[-1],), rounds=1, iterations=1
    )
    scaling_rows.append(
        f"samples_per_target={SIZES[-1]:3d}: records={len(dataset):4d} "
        f"fault_types={len(dataset.fault_type_counts()):2d} time={elapsed:.2f}s "
        f"({len(dataset) / elapsed:.0f} faults/s)"
    )
    scaling_payload.append(
        {"samples_per_target": SIZES[-1], "records": len(dataset), "seconds": elapsed,
         "fault_types": len(dataset.fault_type_counts())}
    )

    splits = split_dataset(dataset)
    train_examples = generator.to_sft_examples(splits.train)
    test_examples = generator.to_sft_examples(splits.test)
    fault_generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
    trainer = SFTTrainer(fault_generator, SFTConfig(epochs=8))
    before = trainer.evaluate(test_examples)
    report = trainer.train(train_examples)
    after = trainer.evaluate(test_examples)

    sft_rows = [
        f"SFT on {len(train_examples)} generated faults "
        f"(loss {report.initial_loss:.2f} -> {report.final_loss:.2f}):",
        f"  held-out slot accuracy {before['slot_accuracy']:.3f} -> {after['slot_accuracy']:.3f}",
        f"  held-out exact match   {before['exact_match']:.3f} -> {after['exact_match']:.3f}",
    ]
    table = "\n".join(scaling_rows + sft_rows)
    payload = {
        "scaling": scaling_payload,
        "fault_type_distribution": dataset.fault_type_counts(),
        "splits": splits.sizes(),
        "sft": {"before": before, "after": after, "loss_curve": report.epoch_losses},
    }
    write_result("dataset_generation", payload, table)

    # Expected shape: generation is fast enough to be "on-demand", covers most
    # of the fault taxonomy, and fine-tuning on it clearly helps.
    assert len(dataset) >= 150
    assert len(dataset.fault_type_counts()) >= 10
    assert len(dataset) / elapsed > 10
    assert after["slot_accuracy"] > before["slot_accuracy"]
    assert after["slot_accuracy"] > 0.5
