"""BENCH_RESILIENCE — the price and the payoff of worker-pool supervision.

Two promises from docs/RESILIENCE.md are measured and gated:

* ``fault_free`` — the supervised execution path (liveness checks,
  requeue-on-death bookkeeping, chaos hooks compiled in but disabled) must
  cost **under 10% wall-clock overhead** against the unsupervised legacy
  path on a healthy pool.  Gated via the ratio
  ``unsupervised_seconds / supervised_seconds >= 0.9`` (medians over
  repeated batches, so scheduler noise does not fail the build).
* ``chaos_recovery`` — with the self-chaos harness SIGKILLing workers,
  stalling tasks, and dropping results, the supervised pool must still
  produce **byte-identical** payloads to a fault-free run (``identical`` is
  1.0 only when every payload matches; gated at 1.0).  The recovery
  counters and the chaotic wall-clock are reported alongside.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.config import ChaosConfig, ResilienceConfig
from repro.execution import WorkerPool
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

BATCH_SIZE = 4 if QUICK else 8
ITERATIONS = 10 if QUICK else 25
REPEATS = 3 if QUICK else 5
WORKERS = 2
#: unsupervised/supervised wall-clock; 0.9 bounds supervision overhead ~10%.
MIN_FAULT_FREE_RATIO = 0.9

CHAOS = ChaosConfig(
    enabled=True,
    seed=31,
    worker_crash_probability=0.3,
    task_delay_probability=0.3,
    task_delay_seconds=0.02,
    drop_result_probability=0.3,
)


def _stable(payload: dict) -> dict:
    """A pool payload with the wall-clock measurement stripped."""
    stable = {k: v for k, v in payload.items() if k != "result"}
    stable["result"] = {
        k: v for k, v in payload.get("result", {}).items() if k != "duration_seconds"
    }
    return stable


def _run_batches(resilience: ResilienceConfig, sources: list[str]) -> tuple[list[float], list[list[dict]], dict]:
    """Timed repeated batches on one pool → (seconds per batch, payloads, stats)."""
    seconds: list[float] = []
    payload_runs: list[list[dict]] = []
    with WorkerPool(
        max_workers=WORKERS, task_timeout_seconds=30.0, resilience=resilience
    ) as pool:
        # One throwaway batch so worker spawn / import cost is not measured.
        pool.run_batch("bank", sources[:1], seed=0, iterations=ITERATIONS)
        for repeat in range(REPEATS):
            started = time.perf_counter()
            payloads = pool.run_batch("bank", sources, seed=repeat, iterations=ITERATIONS)
            seconds.append(time.perf_counter() - started)
            payload_runs.append(payloads)
        stats = pool.stats()
    return seconds, payload_runs, stats


def measure_fault_free_overhead(sources: list[str]) -> dict:
    """Supervised (chaos off) vs unsupervised legacy dispatch, healthy pool."""
    supervised_seconds, supervised_runs, _ = _run_batches(
        ResilienceConfig(supervise=True), sources
    )
    unsupervised_seconds, unsupervised_runs, _ = _run_batches(
        ResilienceConfig(supervise=False), sources
    )
    for run_a, run_b in zip(supervised_runs, unsupervised_runs):
        assert [_stable(p) for p in run_a] == [_stable(p) for p in run_b]
    supervised = statistics.median(supervised_seconds)
    unsupervised = statistics.median(unsupervised_seconds)
    return {
        "batch_size": len(sources),
        "repeats": REPEATS,
        "supervised_seconds": round(supervised, 4),
        "unsupervised_seconds": round(unsupervised, 4),
        "ratio": round(unsupervised / supervised, 3),
        "overhead_percent": round((supervised / unsupervised - 1.0) * 100.0, 1),
    }


def measure_chaos_recovery(sources: list[str]) -> dict:
    """Chaotic batches must converge on the fault-free payload bytes."""
    baseline_seconds, baseline_runs, _ = _run_batches(
        ResilienceConfig(supervise=True), sources
    )
    chaos_seconds, chaos_runs, chaos_stats = _run_batches(
        ResilienceConfig(supervise=True, chaos=CHAOS), sources
    )
    identical = all(
        [_stable(p) for p in chaotic] == [_stable(p) for p in clean]
        for chaotic, clean in zip(chaos_runs, baseline_runs)
    )
    disrupted = chaos_stats["retries"] + chaos_stats["pool_rebuilds"]
    return {
        "batch_size": len(sources),
        "repeats": REPEATS,
        "identical": 1.0 if identical else 0.0,
        "baseline_seconds": round(statistics.median(baseline_seconds), 4),
        "chaos_seconds": round(statistics.median(chaos_seconds), 4),
        "retries": chaos_stats["retries"],
        "pool_rebuilds": chaos_stats["pool_rebuilds"],
        "quarantined": chaos_stats["quarantined"],
        "disruptions": disrupted,
    }


def test_resilience_overhead_and_recovery():
    sources = [get_target("bank").build_source()] * BATCH_SIZE
    fault_free = measure_fault_free_overhead(sources)
    chaos_recovery = measure_chaos_recovery(sources)

    rows = [
        "metric                      supervised-s   reference-s     value",
        (
            f"fault_free ratio           {fault_free['supervised_seconds']:>11.4f}"
            f"   {fault_free['unsupervised_seconds']:>11.4f}   {fault_free['ratio']:>7.3f}"
        ),
        (
            f"chaos identical            {chaos_recovery['chaos_seconds']:>11.4f}"
            f"   {chaos_recovery['baseline_seconds']:>11.4f}"
            f"   {chaos_recovery['identical']:>7.1f}"
        ),
        f"chaos disruptions recovered: {chaos_recovery['disruptions']}",
    ]
    payload = {
        "quick": QUICK,
        "min_fault_free_ratio": MIN_FAULT_FREE_RATIO,
        "fault_free": fault_free,
        "chaos_recovery": chaos_recovery,
    }
    write_result("resilience", payload, table="\n".join(rows))

    # The acceptance bars: supervision is (near-)free on a healthy pool, and
    # chaos never changes results.
    assert fault_free["ratio"] >= MIN_FAULT_FREE_RATIO, payload
    assert chaos_recovery["identical"] == 1.0, payload
    assert chaos_recovery["disruptions"] > 0, payload
