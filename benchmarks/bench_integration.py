"""T-INT — automated deployment and testing (Section IV-2).

Regenerates the failure-mode distribution of a mixed fault-injection campaign
automatically integrated and executed on every target system, demonstrating
the "smooth, automated transition from fault generation to system evaluation".
"""

from __future__ import annotations

from repro.config import IntegrationConfig
from repro.injection import FaultLoad, ProgrammableInjector
from repro.integration import CampaignReport, ExperimentRunner
from repro.targets import all_targets
from repro.types import FailureMode

from conftest import write_result

#: A fault load exercising several operator families on every target.
CAMPAIGN_LOAD = (
    FaultLoad(name="t-int")
    .add("raise_timeout", "*", max_points=1)
    .add("negate_condition", "*", max_points=2)
    .add("arithmetic_corruption", "*", max_points=2)
    .add("remove_call", "*", max_points=2)
    .add("swallow_exception", "*", max_points=1)
    .add("wrong_return_value", "*", max_points=2)
    .add("remove_lock", "*", max_points=1)
    .add("resource_leak", "*", max_points=1)
    .add("inject_delay", "*", {"seconds": 0.02}, max_points=1)
)


def run_campaign():
    injector = ProgrammableInjector()
    report = CampaignReport(name="t-int")
    integration_config = IntegrationConfig(workload_iterations=25, test_timeout_seconds=20)
    per_target_counts = {}
    for target in all_targets():
        faults = injector.inject(target.build_source(), CAMPAIGN_LOAD)
        runner = ExperimentRunner(target, config=integration_config)
        batch = runner.run_batch_applied(faults, mode="inprocess")
        report.add_batch(batch)
        per_target_counts[target.name] = len(faults)
    return report, per_target_counts


def test_integration_failure_mode_distribution(benchmark):
    report, per_target_counts = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    table = report.to_table() + (
        f"\ntotal={report.total} activation_rate={report.activation_rate:.2f} "
        f"failure_rate={report.failure_rate:.2f}"
    )
    payload = {
        "summary": report.summary(),
        "per_target_fault_counts": per_target_counts,
        "distribution": report.failure_mode_distribution(),
    }
    write_result("integration", payload, table)

    distribution = report.failure_mode_distribution()
    observed_modes = {mode for mode, count in distribution.items() if count > 0}
    # Expected shape: integration is fully automatic for every target, the
    # majority of faults activate, and the campaign exposes a diverse mix of
    # failure modes (crashes, detected errors, silent corruption, ...).
    assert report.total >= 40
    assert report.activation_rate > 0.3
    assert {FailureMode.CRASH.value, FailureMode.SILENT_DATA_CORRUPTION.value} <= observed_modes
    assert len(observed_modes - {FailureMode.NO_FAILURE.value}) >= 3
