"""BENCH_HTTP_SERVING — concurrent HTTP clients vs the serial legacy API.

The HTTP/JSON front-end exists so out-of-process clients get the same
continuous-batching wins as in-process ``submit()`` callers.  This benchmark
pins that: an actual ``python -m repro serve`` process is spawned (the real
deployment artifact, not an in-process shortcut), ``CLIENT_THREADS``
concurrent HTTP clients submit generate+execute requests asynchronously
(``POST /v1/generate?async=1``) and poll their tickets — the full network
round trip a serving deployment pays — and the wall clock is compared with
the same workload run serially through the deprecated blocking
:class:`NeuralFaultInjector` surface (one generation pass and one
fresh-interpreter subprocess run per request, its documented defaults).

Two invariants are enforced:

* throughput — the concurrent HTTP path must be >= 3x the serial legacy
  path;
* byte identity — for every request, the deterministic payload fields that
  travel over the wire (fault, strategy, logprob, outcome minus wall-clock)
  must serialize to exactly the same JSON bytes as a payload built from the
  legacy path's candidate and outcome.  HTTP serving must not buy drift.

``BENCH_QUICK=1`` shrinks the request count for CI smoke runs.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

from repro import NeuralFaultInjector, PipelineConfig
from repro.api import GeneratePayload
from repro.config import ExecutionConfig, IntegrationConfig
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

BANK_SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
    "Make transfer return a wrong value without raising",
    "Raise an unexpected exception in deposit when the amount is small",
    "Invert the overdraft condition in withdraw",
    "Swallow the gateway error raised during transfer",
    "Introduce a delay into apply_interest that slows every statement run",
    "Make deposit double-count the amount occasionally",
]
KVSTORE_SCENARIOS = [
    "Simulate a timeout in the put function causing an unhandled exception",
    "Make the get function silently swallow errors instead of raising them",
    "Silently corrupt the value returned by the get function",
    "Raise an unexpected exception in delete when the key is missing",
    "Make the compact function return a wrong value without raising",
    "Remove the validation check from put",
]

REQUEST_COUNT = 6 if QUICK else 24
CLIENT_THREADS = 2 if QUICK else 4
MIN_SPEEDUP = 3.0
POLL_INTERVAL_SECONDS = 0.02


def _workload() -> list[tuple[str, str]]:
    """(description, target) pairs: distinct requests across two targets."""
    pairs = [(text, "bank") for text in BANK_SCENARIOS] + [
        (text, "kvstore") for text in KVSTORE_SCENARIOS
    ]
    while len(pairs) < REQUEST_COUNT:
        pairs = pairs + pairs
    return pairs[:REQUEST_COUNT]


def _config() -> PipelineConfig:
    return PipelineConfig(
        integration=IntegrationConfig(workload_iterations=25, test_timeout_seconds=5),
        execution=ExecutionConfig(max_workers=2, default_mode="pool"),
    )


def _canonical_payload(payload: dict) -> str:
    """Wire payload → canonical JSON of its deterministic fields only.

    Serving observations are excluded: ``batch_size`` (how many requests
    shared the forward pass), the outcome's measured ``duration_seconds``,
    and ``details.mode`` (which sandbox flavour the scheduler picked — the
    legacy path's documented default is ``subprocess``, the server runs
    ``pool``).  Everything else — the fault, strategy, logprobs, activation,
    failure mode, execution details — must be byte-identical between paths.
    """
    data = dict(payload)
    data.pop("batch_size", None)
    if data.get("outcome"):
        outcome = {k: v for k, v in data["outcome"].items() if k != "duration_seconds"}
        if isinstance(outcome.get("details"), dict):
            details = {k: v for k, v in outcome["details"].items() if k != "mode"}
            if isinstance(details.get("reason"), str):
                # Degraded-mode reasons embed measured durations ("run took
                # 0.405s versus a baseline of 0.002s") — mask the numbers,
                # keep the text.
                details["reason"] = re.sub(r"\d+(?:\.\d+)?s\b", "<wall-clock>s", details["reason"])
            outcome["details"] = details
        data["outcome"] = outcome
    return json.dumps(data, sort_keys=True)


def _serial_legacy(workload, execute: bool):
    """One blocking client on the deprecated surface, old-API defaults."""
    payloads = []
    with NeuralFaultInjector(_config()) as injector:
        sources = {name: get_target(name).build_source() for name in ("bank", "kvstore")}
        started = time.perf_counter()
        for description, target in workload:
            spec, context = injector.define_fault(description, code=sources[target])
            prompt = injector.build_prompt(spec, context)
            candidate = injector.generate_fault(prompt)
            outcome = None
            if execute:
                outcome = injector.integrate_and_test(
                    candidate.fault, target, mode="subprocess"
                ).outcome
            payloads.append(
                _canonical_payload(
                    GeneratePayload.from_candidate(candidate, outcome=outcome).to_dict()
                )
            )
        elapsed = time.perf_counter() - started
    return elapsed, payloads


def _spawn_server() -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro serve`` on an ephemeral port and return its URL."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--mode",
            "pool",
            "--max-workers",
            "2",
            "--queue-delay",
            "0.002",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    # The banner may be preceded by interpreter/library warnings on stderr;
    # scan until it appears (EOF means the process died before serving).
    seen: list[str] = []
    while True:
        line = process.stderr.readline()
        if not line:
            process.kill()
            raise RuntimeError(f"server did not start; stderr was {seen!r}")
        if "serving on " in line:
            return process, line.split("serving on ")[1].split(" ")[0]
        seen.append(line.rstrip())


def _http(connection: http.client.HTTPConnection, method: str, path: str, body=None):
    """One HTTP exchange over a persistent connection → (status, JSON body)."""
    payload = json.dumps(body).encode("utf-8") if body is not None else None
    connection.request(method, path, body=payload, headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    return response.status, json.loads(response.read())


def _concurrent_http(url: str, workload, execute: bool, tag: str):
    """CLIENT_THREADS HTTP clients against the spawned server.

    Execute requests go through the asynchronous surface (``POST
    /v1/generate?async=1`` + ticket polling) — sandbox runs take long enough
    that holding an HTTP response open per request would serialize on the
    connection, and polling overhead is noise next to execution time.
    Generation-only requests use the blocking ``POST /v1/generate``: decoding
    is milliseconds, so the poll interval would dominate the measurement and
    hide the batching win the scheduler actually delivers.
    """
    host_port = url.removeprefix("http://")
    host, port = host_port.rsplit(":", 1)
    bodies = [
        {
            "description": description,
            "target": target,
            "execute": execute,
            "mode": "pool" if execute else None,
            "request_id": f"{tag}-{index}",
        }
        for index, (description, target) in enumerate(workload)
    ]
    payloads: list[str | None] = [None] * len(bodies)
    errors: list[str] = []

    def client(offset: int) -> None:
        connection = http.client.HTTPConnection(host, int(port), timeout=120)
        try:
            mine = list(range(offset, len(bodies), CLIENT_THREADS))
            if not execute:
                for index in mine:
                    status, envelope = _http(
                        connection, "POST", "/v1/generate", bodies[index]
                    )
                    if status != 200 or envelope["status"] != "ok":
                        errors.append(f"generate {index}: HTTP {status} {envelope}")
                        return
                    payloads[index] = _canonical_payload(envelope["payload"])
                return
            for index in mine:
                status, ticket = _http(
                    connection, "POST", "/v1/generate?async=1", bodies[index]
                )
                if status != 202:
                    errors.append(f"submit {index}: HTTP {status} {ticket}")
                    return
            for index in mine:
                while True:
                    status, envelope = _http(
                        connection, "GET", f"/v1/requests/{tag}-{index}"
                    )
                    if status == 202:
                        time.sleep(POLL_INTERVAL_SECONDS)
                        continue
                    if status != 200 or envelope["status"] != "ok":
                        errors.append(f"poll {index}: HTTP {status} {envelope}")
                        return
                    payloads[index] = _canonical_payload(envelope["payload"])
                    break
        finally:
            connection.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    assert all(payload is not None for payload in payloads)
    return elapsed, payloads


def test_http_serving_throughput():
    workload = _workload()
    process, url = _spawn_server()
    try:
        # Warm the per-target worker pools outside the timed region (the
        # serial path's interpreter is likewise already warm); deployments
        # pay pool startup once per process, not per burst.
        _concurrent_http(url, [(workload[0][0], "bank"), (workload[0][0], "kvstore")],
                         execute=True, tag="warm")

        concurrent_seconds, concurrent_payloads = _concurrent_http(
            url, workload, execute=True, tag="bench"
        )
        gen_concurrent_seconds, gen_concurrent_payloads = _concurrent_http(
            url, workload, execute=False, tag="gen"
        )

        connection = http.client.HTTPConnection(
            url.removeprefix("http://").rsplit(":", 1)[0],
            int(url.rsplit(":", 1)[1]),
            timeout=30,
        )
        _, stats = _http(connection, "GET", "/v1/stats")
        connection.close()
    finally:
        process.send_signal(signal.SIGINT)
        exit_code = process.wait(timeout=60)
    assert exit_code == 0, f"server did not drain cleanly (exit {exit_code})"

    serial_seconds, serial_payloads = _serial_legacy(workload, execute=True)
    gen_serial_seconds, gen_serial_payloads = _serial_legacy(workload, execute=False)

    # Byte identity: HTTP serving must not change a single deterministic
    # payload byte relative to the legacy blocking path.
    assert concurrent_payloads == serial_payloads
    assert gen_concurrent_payloads == gen_serial_payloads

    speedup = serial_seconds / concurrent_seconds
    generation_speedup = gen_serial_seconds / gen_concurrent_seconds
    batch_sizes = [b["size"] for b in stats["scheduler"]["batches"] if b["kind"] == "generate"]

    payload = {
        "quick": QUICK,
        "requests": len(workload),
        "client_threads": CLIENT_THREADS,
        "min_speedup": MIN_SPEEDUP,
        "serving": {
            "serial_legacy_seconds": round(serial_seconds, 3),
            "concurrent_http_seconds": round(concurrent_seconds, 3),
            "speedup": round(speedup, 2),
            "serial_rps": round(len(workload) / serial_seconds, 2),
            "concurrent_rps": round(len(workload) / concurrent_seconds, 2),
        },
        "generation_only": {
            "serial_legacy_seconds": round(gen_serial_seconds, 3),
            "concurrent_http_seconds": round(gen_concurrent_seconds, 3),
            "speedup": round(generation_speedup, 2),
        },
        "scheduler_batch_sizes": batch_sizes,
        "server_requests_total": stats["server"]["requests_total"],
    }
    table_rows = [
        f"{'workload':<18} {'serial (s)':>11} {'http (s)':>10} {'speedup':>8}",
        f"{'generate+execute':<18} {serial_seconds:>11.3f} {concurrent_seconds:>10.3f} {speedup:>7.1f}x",
        f"{'generate only':<18} {gen_serial_seconds:>11.3f} {gen_concurrent_seconds:>10.3f} {generation_speedup:>7.1f}x",
        f"scheduler batches: {batch_sizes}",
    ]
    write_result("http_serving", payload, table="\n".join(table_rows))

    assert speedup >= MIN_SPEEDUP, (
        f"concurrent HTTP serving speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
