"""EX-A — the Section III-A running example.

Regenerates the two-iteration refinement of the paper's running example:
iteration 1 produces a database-timeout fault whose exception handling is
missing or absent; the tester replies "introduce a retry mechanism instead of
just logging the error"; iteration 2 produces the retry-based fault.  The
benchmark also measures the behavioural consequence: the unhandled fault
crashes the e-commerce workload while the refined fault does not.
"""

from __future__ import annotations

from repro.core import RefinementSession
from repro.integration import ExperimentRunner
from repro.targets import get_target
from repro.types import FailureMode

from conftest import write_result

DESCRIPTION = (
    "Simulate a scenario where a database transaction fails due to a timeout, "
    "causing an unhandled exception within the process_transaction function."
)
FEEDBACK = "introduce a retry mechanism instead of just logging the error"


def run_session(pipeline, source):
    session = RefinementSession(pipeline, DESCRIPTION, code=source)
    first = session.propose()
    second = session.give_feedback(FEEDBACK)
    return session, first, second


def test_running_example_two_iterations(benchmark, prepared_pipeline):
    target = get_target("ecommerce")
    source = target.build_source()
    session, first, second = benchmark.pedantic(
        run_session, args=(prepared_pipeline, source), rounds=1, iterations=1
    )

    runner = ExperimentRunner(target, config=prepared_pipeline.config.integration)
    outcome_before = runner.run_generated(first.fault, mode="inprocess").outcome
    outcome_after = runner.run_generated(second.fault, mode="inprocess").outcome

    table = "\n".join(
        [
            f"iteration 1: template={first.decisions.template} handling={first.decisions.handling} "
            f"-> failure_mode={outcome_before.failure_mode.value}",
            f'tester feedback: "{FEEDBACK}"',
            f"iteration 2: template={second.decisions.template} handling={second.decisions.handling} "
            f"-> failure_mode={outcome_after.failure_mode.value}",
        ]
    )
    payload = {
        "history": session.history(),
        "iteration_1": {"decisions": first.decisions.to_dict(), "outcome": outcome_before.to_dict()},
        "iteration_2": {"decisions": second.decisions.to_dict(), "outcome": outcome_after.to_dict()},
        "iteration_1_code": first.fault.code,
        "iteration_2_code": second.fault.code,
    }
    write_result("running_example", payload, table)

    assert first.decisions.template == "timeout"
    assert first.decisions.handling in ("unhandled", "logged_only")
    assert second.decisions.handling == "retry"
    assert "retry" in second.fault.code.lower()
    assert outcome_before.failure_mode is FailureMode.CRASH
    assert outcome_after.failure_mode is not FailureMode.CRASH
