"""T-ABL — ablations of the design choices called out in DESIGN.md.

Compares generation quality (alignment with the reference decisions for a
held-out set of scenarios) across four configurations:

* full system (SFT + spec-constrained decoding + code context);
* no supervised fine-tuning;
* no spec-constrained decoding;
* no code context (single-input instead of the paper's dual-input strategy).
"""

from __future__ import annotations

from repro.config import ModelConfig, SFTConfig
from repro.eval import decision_accuracy, mean, syntactic_validity
from repro.llm import FaultGenerator, SFTTrainer, reference_decisions
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.targets import get_target

from conftest import write_result

SCENARIOS = [
    "Simulate a timeout in process_transaction causing an unhandled exception",
    "Introduce a race condition in reserve_inventory under concurrent checkouts",
    "Make validate_cart silently swallow errors",
    "Silently corrupt the total computed by compute_total",
    "Introduce a memory leak in charge_payment",
    "Make send_confirmation fail with a network failure",
    "Introduce an off-by-one error in the loop of compute_total",
    "Add a delay of 100 milliseconds to charge_payment",
]


def build_prompt(text, source, use_code):
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    spec = extractor.extract_from_text(text, source if use_code else None)
    context = None
    if use_code:
        context = analyzer.analyze(source)
        analyzer.select_function(context, text, hint=spec.target.function)
    return builder.build(spec, context), spec


def evaluate_variant(name, train_examples, constrain, use_code, sft_epochs):
    generator = FaultGenerator(ModelConfig(constrain_to_spec=constrain))
    if sft_epochs:
        SFTTrainer(generator, SFTConfig(epochs=sft_epochs)).train(train_examples)
    source = get_target("ecommerce").build_source()
    accuracies = []
    validity = []
    for text in SCENARIOS:
        prompt, spec = build_prompt(text, source, use_code)
        candidate = generator.generate(prompt)
        accuracies.append(
            decision_accuracy(candidate.decisions.to_dict(), reference_decisions(spec).to_dict())
        )
        validity.append(1.0 if syntactic_validity(candidate.fault.code) else 0.0)
    return {"variant": name, "decision_accuracy": mean(accuracies), "validity": mean(validity)}


def run_ablations(pipeline):
    train_examples = pipeline.dataset_generator.to_sft_examples(pipeline.dataset)
    epochs = pipeline.config.sft.epochs
    return [
        evaluate_variant("full (SFT + spec constraint + code)", train_examples, True, True, epochs),
        evaluate_variant("no SFT", train_examples, True, True, 0),
        evaluate_variant("no spec constraint", train_examples, False, True, epochs),
        evaluate_variant("no code context", train_examples, True, False, epochs),
        evaluate_variant("untrained, unconstrained", train_examples, False, True, 0),
    ]


def test_design_choice_ablations(benchmark, prepared_pipeline):
    results = benchmark.pedantic(run_ablations, args=(prepared_pipeline,), rounds=1, iterations=1)

    rows = [
        f"{entry['variant']:36s} decision_accuracy={entry['decision_accuracy']:.3f} "
        f"validity={entry['validity']:.2f}"
        for entry in results
    ]
    write_result("ablations", {"results": results}, "\n".join(rows))

    by_name = {entry["variant"]: entry for entry in results}
    full = by_name["full (SFT + spec constraint + code)"]
    # Expected shape: every ablation removes some accuracy relative to the full
    # system, and grammar-constrained rendering keeps outputs syntactically
    # valid in every configuration.
    assert full["decision_accuracy"] >= by_name["no SFT"]["decision_accuracy"] - 1e-9
    assert full["decision_accuracy"] >= by_name["no spec constraint"]["decision_accuracy"] - 1e-9
    assert full["decision_accuracy"] >= by_name["no code context"]["decision_accuracy"] - 1e-9
    assert full["decision_accuracy"] > by_name["untrained, unconstrained"]["decision_accuracy"]
    assert all(entry["validity"] == 1.0 for entry in results)
