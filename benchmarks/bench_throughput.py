"""BENCH_THROUGHPUT — faults/sec: serial vs batched vs pooled execution.

Measures the execution phase of a 20-scenario campaign against the bank target
in three configurations:

* ``serial-subprocess`` — the seed hot path: one ``subprocess.run`` per fault,
  each cold-starting an interpreter and re-importing ``repro``;
* ``batch-subprocess`` — the same subprocess sandbox driven concurrently by
  ``run_many``/``run_batch`` worker threads;
* ``pool`` — persistent sandbox workers that import the library once and serve
  every fault;

plus in-process serial as the lower bound.  Outcomes (fault id, activation,
failure mode, ordering) must be identical across configurations for the same
seed; the pooled path must beat the serial seed path by >= 3x.
"""

from __future__ import annotations

import time

from repro.config import ExecutionConfig, IntegrationConfig
from repro.integration import ExperimentRunner
from repro.targets import get_target

from conftest import write_result

SCENARIO_COUNT = 20
REQUESTED_WORKERS = 4

SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Introduce a race condition in apply_interest under concurrent updates",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
    "Cause deposit to lose updates under load",
    "Make transfer return a wrong value without raising",
    "Inject a delay into apply_interest that slows every statement run",
    "Raise an unexpected exception in deposit when the amount is small",
    "Corrupt the balance bookkeeping inside withdraw",
    "Make apply_interest skip accounts intermittently",
    "Introduce an off-by-one error in the interest calculation",
    "Swallow the gateway error raised during transfer",
    "Return early from withdraw before the ledger is updated",
    "Invert the overdraft condition in withdraw",
    "Make deposit double-count the amount occasionally",
    "Make transfer debit the source account twice for the same movement",
    "Leak the audit log handle opened by apply_interest",
    "Make the statement function report stale balances",
    "Raise a timeout while the ledger lock is held in transfer",
]


def _outcome_keys(outcomes):
    """Order-sensitive fingerprint of a campaign, excluding wall-clock noise."""
    return [
        (o.fault_id, o.activated, o.failure_mode.value, o.tests_failed, o.details["reason"])
        for o in outcomes
    ]


def _generate_faults(pipeline, target):
    source = target.build_source()
    faults = []
    for scenario in SCENARIOS[:SCENARIO_COUNT]:
        spec, context = pipeline.define_fault(scenario, code=source)
        prompt = pipeline.build_prompt(spec, context)
        faults.append(pipeline.generate_fault(prompt).fault)
    return faults


def test_execution_throughput(prepared_pipeline):
    target = get_target("bank")
    faults = _generate_faults(prepared_pipeline, target)
    # No scenario in this set hangs, so a single slow timeout never dominates the
    # critical path; 5s still gives sleep-shaped faults ample room.
    config = IntegrationConfig(workload_iterations=25, test_timeout_seconds=5)
    seed = prepared_pipeline.config.seed

    timings: dict[str, float] = {}
    keys: dict[str, list] = {}

    def measure(label: str, execute):
        started = time.perf_counter()
        outcomes = execute()
        timings[label] = time.perf_counter() - started
        keys[label] = _outcome_keys(outcomes)

    serial_runner = ExperimentRunner(
        target, config=config, seed=seed, execution=ExecutionConfig(max_workers=1)
    )
    measure(
        "serial-subprocess",
        lambda: [serial_runner.run_generated(fault, mode="subprocess").outcome for fault in faults],
    )

    batch_runner = ExperimentRunner(
        target, config=config, seed=seed, execution=ExecutionConfig(max_workers=REQUESTED_WORKERS)
    )
    measure(
        "batch-subprocess",
        lambda: batch_runner.run_many(faults, mode="subprocess").outcomes,
    )

    pool_runner = ExperimentRunner(
        target, config=config, seed=seed, execution=ExecutionConfig(max_workers=REQUESTED_WORKERS)
    )
    measure("pool", lambda: pool_runner.run_many(faults, mode="pool").outcomes)

    inprocess_runner = ExperimentRunner(
        target, config=config, seed=seed, execution=ExecutionConfig(max_workers=1)
    )
    measure(
        "serial-inprocess",
        lambda: [inprocess_runner.run_generated(fault, mode="inprocess").outcome for fault in faults],
    )

    # Identical campaigns: same outcomes, same ordering, for every configuration.
    assert keys["batch-subprocess"] == keys["serial-subprocess"]
    assert keys["pool"] == keys["serial-subprocess"]

    serial = timings["serial-subprocess"]
    rows = ["config                 seconds   faults/sec   speedup-vs-serial"]
    payload = {
        "scenarios": len(faults),
        "requested_workers": REQUESTED_WORKERS,
        "resolved_workers": ExecutionConfig(max_workers=REQUESTED_WORKERS).resolved_workers(),
        "configs": {},
    }
    for label, elapsed in timings.items():
        speedup = serial / elapsed if elapsed else float("inf")
        payload["configs"][label] = {
            "seconds": round(elapsed, 3),
            "faults_per_second": round(len(faults) / elapsed, 2) if elapsed else None,
            "speedup_vs_serial_subprocess": round(speedup, 2),
        }
        rows.append(
            f"{label:<22} {elapsed:>7.2f}   {len(faults) / elapsed:>10.2f}   {speedup:>17.2f}"
        )
    write_result("throughput", payload, table="\n".join(rows))

    # The acceptance bar: pooled execution beats the serial seed path >= 3x.
    assert serial / timings["pool"] >= 3.0, payload
