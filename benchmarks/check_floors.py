#!/usr/bin/env python
"""Benchmark-regression gate: fail if any committed speedup floor regresses.

The repo commits the benchmark trajectory under ``benchmarks/results/*.json``
and promises floors in ROADMAP.md (pooled execution >= 3x, pooled dataset
generation >= 2x, batched policy inference >= 3x, compiled grammar decode
>= 3x, concurrent engine serving >= 3x, concurrent HTTP serving >= 3x,
4-shard serving >= 2.5x with byte-identical payloads,
supervised execution overhead <= ~10%, chaos recovery byte-identical).
CI runs this script against the
committed full-mode numbers *and* against the quick-mode smoke output
(``benchmarks/results/quick``), so a regression fails the build instead of
silently re-measuring lower.

Usage::

    python benchmarks/check_floors.py                       # committed numbers
    python benchmarks/check_floors.py --results benchmarks/results \
        --results benchmarks/results/quick                  # + quick-run output

The first ``--results`` directory is the committed baseline: every gated
result file must exist there.  Later directories (quick-mode output) are
checked only for the files they contain — CI's smoke profile runs a subset
of the benchmarks.  Exit code 0 = all floors hold; 1 = regression/missing.

Stdlib-only on purpose: the gate must run before (and regardless of) any
dependency installation step.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent / "results"

#: (file, metric label, key path into the JSON, floor). One row per promise.
FLOORS: list[tuple[str, str, tuple[str, ...], float]] = [
    (
        "throughput.json",
        "pooled execution vs serial subprocess",
        ("configs", "pool", "speedup_vs_serial_subprocess"),
        3.0,
    ),
    (
        "dataset_gen.json",
        "pooled validated dataset generation vs serial",
        ("configs", "pool", "speedup_vs_serial_subprocess"),
        2.0,
    ),
    (
        "policy_inference.json",
        "batched multi-prompt generation vs per-sample",
        ("workloads", "generation", "speedup"),
        3.0,
    ),
    (
        "policy_inference.json",
        "batched SFT epoch vs per-sample",
        ("workloads", "sft_epoch", "speedup"),
        3.0,
    ),
    (
        "policy_inference.json",
        "batched RLHF round vs per-sample",
        ("workloads", "rlhf_round", "speedup"),
        3.0,
    ),
    (
        "compiled_decode.json",
        "compiled grammar decode vs interpreted (generation)",
        ("workloads", "generation_decode", "speedup"),
        3.0,
    ),
    (
        "compiled_decode.json",
        "cached automaton compilation vs recompiling",
        ("workloads", "compile_cache", "speedup"),
        3.0,
    ),
    (
        "serving.json",
        "concurrent engine clients vs serial old API",
        ("serving", "speedup"),
        3.0,
    ),
    (
        "http_serving.json",
        "concurrent HTTP clients vs serial legacy API",
        ("serving", "speedup"),
        3.0,
    ),
    (
        "sharded_serving.json",
        "4-shard serving vs single engine",
        ("serving", "speedup"),
        2.5,
    ),
    (
        "sharded_serving.json",
        "sharded payloads byte-identical to single engine",
        ("serving", "identical"),
        1.0,
    ),
    (
        "distributed.json",
        "distributed localhost workers vs serial subprocess",
        ("configs", "distributed", "speedup_vs_serial_subprocess"),
        3.0,
    ),
    (
        "distributed.json",
        "distributed chaos recovery byte-identical results",
        ("chaos_recovery", "identical"),
        1.0,
    ),
    (
        "resilience.json",
        "supervised fault-free execution vs unsupervised",
        ("fault_free", "ratio"),
        0.9,
    ),
    (
        "resilience.json",
        "chaos recovery byte-identical results",
        ("chaos_recovery", "identical"),
        1.0,
    ),
]


def _lookup(data: dict, path: tuple[str, ...]):
    """Walk a key path into nested dicts; ``None`` when any key is absent."""
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def check_directory(results_dir: Path, require_all: bool) -> tuple[list[str], list[str]]:
    """Check every floor against one results directory.

    Args:
        results_dir: Directory holding ``*.json`` benchmark outputs.
        require_all: Whether a missing gated file is a violation (the
            committed baseline) or merely skipped (partial quick output).

    Returns:
        ``(report_lines, violations)`` — human-readable rows plus the
        violation messages (empty when the directory passes).
    """
    lines: list[str] = []
    violations: list[str] = []
    for filename, label, path, floor in FLOORS:
        source = results_dir / filename
        where = f"{source.parent.name}/{filename}"
        if not source.is_file():
            if require_all:
                violations.append(f"{where}: missing gated result file")
                lines.append(f"  FAIL {label}: {where} missing")
            else:
                lines.append(f"  skip {label}: {where} not produced by this run")
            continue
        try:
            data = json.loads(source.read_text())
        except json.JSONDecodeError as exc:
            violations.append(f"{where}: unreadable JSON ({exc})")
            lines.append(f"  FAIL {label}: unreadable JSON")
            continue
        value = _lookup(data, path)
        if not isinstance(value, (int, float)):
            violations.append(f"{where}: {'.'.join(path)} missing from result JSON")
            lines.append(f"  FAIL {label}: {'.'.join(path)} missing")
            continue
        if value < floor:
            violations.append(
                f"{where}: {label} regressed to {value:.2f}x (floor {floor:.1f}x)"
            )
            lines.append(f"  FAIL {label}: {value:.2f}x < floor {floor:.1f}x")
        else:
            lines.append(f"  ok   {label}: {value:.2f}x >= {floor:.1f}x")
    return lines, violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        action="append",
        type=Path,
        default=None,
        help="results directory (repeatable; first = committed baseline, "
        "must contain every gated file; later dirs are partial quick output)",
    )
    args = parser.parse_args(argv)
    directories = args.results or [DEFAULT_RESULTS]

    all_violations: list[str] = []
    for index, results_dir in enumerate(directories):
        require_all = index == 0
        print(f"[{results_dir}] ({'baseline' if require_all else 'partial run'})")
        if not results_dir.is_dir():
            if require_all:
                all_violations.append(f"{results_dir}: baseline results directory missing")
                print("  FAIL: directory missing")
            else:
                print("  skip: directory missing (no quick output)")
            continue
        lines, violations = check_directory(results_dir, require_all=require_all)
        print("\n".join(lines))
        all_violations.extend(violations)

    if all_violations:
        print("\nbenchmark floor regressions:", file=sys.stderr)
        for violation in all_violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("\nall benchmark floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
