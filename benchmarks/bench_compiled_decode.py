"""BENCH_COMPILED_DECODE — compiled grammar automatons vs interpreted decoding.

The interpreted constrained-decoding path re-derives every prompt's constraint
set per call, copies the policy's probability matrices to one-hot the pinned
rows, and re-runs temperature/truncation maths for every sampled attempt of
every slot.  The compiled path (``repro.llm.compiled_grammar``) compiles each
prompt's constraints once into a cached :class:`DecisionAutomaton`, jumps
forward through force-determined slots, and replays sampled draws through
precomputed :class:`DecodePlan` CDF tables.

Workloads, each asserted byte-identical to the interpreted oracle (rendered
faults, decision vectors, log-probabilities, and the decoder RNG stream):

* ``generation_decode`` — the decode-bound slice of the multi-prompt
  candidate-generation workload from ``bench_policy_inference``: per-prompt
  distributions plus diverse candidate decoding, without the (cached,
  decode-independent) fault rendering.  Gated >= 3x.
* ``duplicate_candidates`` — the dedup-aware ``candidates_batch`` end to end
  on a duplicate-heavy batch (duplicates share one compiled automaton, one
  sampling plan, and one RNG-free greedy head).  Render-bound, so reported
  but not floor-gated.
* ``compile_cache`` — automaton compilation with the LRU cache against
  recompiling per call (``compiled_cache_size=0``).

``BENCH_QUICK=1`` shrinks the workload sizes for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.config import ModelConfig
from repro.llm import CodeGrammar, FaultGenerator
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.rng import SeededRNG
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Introduce a race condition in apply_interest under concurrent updates",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
    "Cause deposit to lose updates under load",
    "Make transfer return a wrong value without raising",
    "Inject a delay into apply_interest that slows every statement run",
    "Raise an unexpected exception in deposit when the amount is small",
    "Corrupt the balance bookkeeping inside withdraw",
    "Make apply_interest skip accounts intermittently",
    "Introduce an off-by-one error in the interest calculation",
    "Swallow the gateway error raised during transfer",
    "Return early from withdraw before the ledger is updated",
    "Invert the overdraft condition in withdraw",
    "Make deposit double-count the amount occasionally",
    "Make transfer debit the source account twice for the same movement",
    "Leak the audit log handle opened by apply_interest",
    "Make the statement function report stale balances",
    "Raise a timeout while the ledger lock is held in transfer",
]

PROMPT_COUNT = 10 if QUICK else 20
DECODE_ROUNDS = 8 if QUICK else 20
CANDIDATES_PER_PROMPT = 4
DUPLICATE_COPIES = 4 if QUICK else 8
DUPLICATE_ROUNDS = 2 if QUICK else 5
COMPILE_CALLS = 500 if QUICK else 2000
MIN_SPEEDUP = 3.0


def build_prompts():
    source = get_target("bank").build_source()
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    prompts = []
    for text in SCENARIOS[:PROMPT_COUNT]:
        spec = extractor.extract_from_text(text, source)
        context = analyzer.analyze(source)
        analyzer.select_function(context, text, hint=spec.target.function)
        prompts.append(builder.build(spec, context))
    return prompts


def make_generator(compiled: bool) -> FaultGenerator:
    config = ModelConfig(compiled_decode=compiled)
    return FaultGenerator(config, rng=SeededRNG(17, namespace="generator"))


def rng_state(generator: FaultGenerator):
    return generator.decoder._rng.generator.bit_generator.state


def assert_rendered_identical(prompt, interpreted_result, compiled_result, grammar):
    """Rendered faults must be byte-identical, not merely decision-equal."""
    assert interpreted_result.decisions == compiled_result.decisions
    assert interpreted_result.logprob == compiled_result.logprob
    left = grammar.render(prompt, interpreted_result.decisions)
    right = grammar.render(prompt, compiled_result.decisions)
    assert left.function_source == right.function_source
    assert left.module_source == right.module_source


# -- workloads -----------------------------------------------------------------


def measure_generation_decode(prompts):
    """The decode-bound slice: distributions + diverse candidate decoding.

    The interpreted reference is exactly what the library does without
    automatons: derive constrained per-prompt distributions, then run
    temperature/truncation per sampled attempt.  Rendering is excluded from
    the timed region on both sides — the render cache is decode-independent
    and would drown the decode cost being measured.
    """
    interpreted = make_generator(False)
    compiled = make_generator(True)

    started = time.perf_counter()
    interpreted_rounds = []
    for _round in range(DECODE_ROUNDS):
        distributions = interpreted.prompt_distributions(prompts)
        row_results = []
        for row in range(len(prompts)):
            row_distributions = {slot: matrix[row] for slot, matrix in distributions.items()}
            row_results.append(
                interpreted.decoder.diverse_candidates(row_distributions, CANDIDATES_PER_PROMPT)
            )
        interpreted_rounds.append(row_results)
    interpreted_seconds = time.perf_counter() - started

    started = time.perf_counter()
    compiled_rounds = []
    for _round in range(DECODE_ROUNDS):
        distributions = compiled.prompt_distributions(prompts, constrained=False)
        row_results = []
        for row, prompt in enumerate(prompts):
            row_distributions = {slot: matrix[row] for slot, matrix in distributions.items()}
            automaton = compiled.compiler.compile(prompt)
            plan = compiled.compiler.plan_for(
                prompt,
                row_distributions,
                max(compiled.config.temperature, 1.2),
                compiled.config.top_k,
                compiled.config.top_p,
            )
            row_results.append(
                compiled.decoder.diverse_candidates(
                    row_distributions, CANDIDATES_PER_PROMPT, automaton=automaton, plan=plan
                )
            )
        compiled_rounds.append(row_results)
    compiled_seconds = time.perf_counter() - started

    assert rng_state(interpreted) == rng_state(compiled), "decoder RNG streams diverged"
    grammar = CodeGrammar()
    for interpreted_round, compiled_round, in zip(interpreted_rounds, compiled_rounds):
        for prompt, row_a, row_b in zip(prompts, interpreted_round, compiled_round):
            for result_a, result_b in zip(row_a, row_b):
                assert_rendered_identical(prompt, result_a, result_b, grammar)

    jump_taken = sum(
        automaton.jump_forward_taken for automaton in compiled.compiler.export_cache().values()
    )
    return {
        "prompts": len(prompts),
        "rounds": DECODE_ROUNDS,
        "candidates_per_prompt": CANDIDATES_PER_PROMPT,
        "interpreted_seconds": round(interpreted_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "speedup": round(interpreted_seconds / compiled_seconds, 2),
        "jump_forward_taken": jump_taken,
        "automaton_cache": compiled.compiler.cache_info(),
    }


def measure_duplicate_candidates(prompts):
    """Dedup-aware ``candidates_batch`` end to end on a duplicate-heavy batch."""
    unique = prompts[:4]
    batch = unique * DUPLICATE_COPIES
    interpreted = make_generator(False)
    compiled = make_generator(True)
    # Warm the decode-independent caches (encoder, render) on both sides so
    # the comparison is between steady-state decodes, not first-touch misses.
    interpreted.candidates_batch(batch, CANDIDATES_PER_PROMPT)
    compiled.candidates_batch(batch, CANDIDATES_PER_PROMPT)

    started = time.perf_counter()
    interpreted_rounds = [
        interpreted.candidates_batch(batch, CANDIDATES_PER_PROMPT)
        for _round in range(DUPLICATE_ROUNDS)
    ]
    interpreted_seconds = time.perf_counter() - started

    started = time.perf_counter()
    compiled_rounds = [
        compiled.candidates_batch(batch, CANDIDATES_PER_PROMPT)
        for _round in range(DUPLICATE_ROUNDS)
    ]
    compiled_seconds = time.perf_counter() - started

    assert rng_state(interpreted) == rng_state(compiled), "decoder RNG streams diverged"
    for interpreted_round, compiled_round in zip(interpreted_rounds, compiled_rounds):
        for row_a, row_b in zip(interpreted_round, compiled_round):
            for candidate_a, candidate_b in zip(row_a, row_b):
                assert candidate_a.fault.fault_id == candidate_b.fault.fault_id
                assert candidate_a.fault.code == candidate_b.fault.code
                assert candidate_a.logprob == candidate_b.logprob

    return {
        "unique_prompts": len(unique),
        "batch_rows": len(batch),
        "rounds": DUPLICATE_ROUNDS,
        "interpreted_seconds": round(interpreted_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "speedup": round(interpreted_seconds / compiled_seconds, 2),
        "automaton_cache": compiled.compiler.cache_info(),
    }


def measure_compile_cache(prompts):
    """Cached automaton compilation vs recompiling the grammar per call."""
    from repro.llm import GrammarCompiler

    uncached = GrammarCompiler(ModelConfig(compiled_cache_size=0))
    started = time.perf_counter()
    for call in range(COMPILE_CALLS):
        uncached.compile(prompts[call % len(prompts)])
    uncached_seconds = time.perf_counter() - started

    cached = GrammarCompiler(ModelConfig())
    started = time.perf_counter()
    for call in range(COMPILE_CALLS):
        cached.compile(prompts[call % len(prompts)])
    cached_seconds = time.perf_counter() - started

    info = cached.cache_info()
    assert info["misses"] == len(prompts)
    assert info["hits"] == COMPILE_CALLS - len(prompts)
    return {
        "calls": COMPILE_CALLS,
        "uncached_seconds": round(uncached_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "speedup": round(uncached_seconds / cached_seconds, 2),
        "automaton_cache": info,
    }


def test_compiled_decode_throughput():
    prompts = build_prompts()
    workloads = {
        "generation_decode": measure_generation_decode(prompts),
        "duplicate_candidates": measure_duplicate_candidates(prompts),
        "compile_cache": measure_compile_cache(prompts),
    }

    rows = ["workload               interpreted-s   compiled-s   speedup"]
    for label, stats in workloads.items():
        interpreted = stats.get("interpreted_seconds", stats.get("uncached_seconds"))
        compiled = stats.get("compiled_seconds", stats.get("cached_seconds"))
        rows.append(
            f"{label:<22} {interpreted:>13.4f}   {compiled:>10.4f}   {stats['speedup']:>7.2f}"
        )
    payload = {"quick": QUICK, "min_speedup": MIN_SPEEDUP, "workloads": workloads}
    write_result("compiled_decode", payload, table="\n".join(rows))

    # The acceptance bar: the decode-bound generation path beats the
    # interpreted oracle >= 3x.  The duplicate-heavy end-to-end workload is
    # render-bound (the render cache dominates either way) and is reported,
    # not gated.
    assert workloads["generation_decode"]["speedup"] >= MIN_SPEEDUP, payload
    assert workloads["compile_cache"]["speedup"] >= MIN_SPEEDUP, payload
