"""BENCH_SERVING — concurrent clients through the engine vs the old blocking API.

The service-layer redesign exists so many clients can share one pipeline
stack: the continuous-batching scheduler coalesces concurrent
:class:`GenerateRequest` submissions into single batched forward passes and
pooled sandbox batches, where the old :class:`NeuralFaultInjector` surface
served every caller with blocking per-call methods (one generation pass and
one fresh-interpreter subprocess run per request — its documented defaults).

Two workloads are timed over the same request list (distinct descriptions
across two targets, each request asking for generation *and* execution — the
full Fig. 1 pass a serving deployment performs per request):

* ``serial-old-api`` — requests handled one at a time through the old
  blocking surface: ``inject()`` then ``integrate_and_test()`` per request;
* ``concurrent-engine`` — the same requests submitted by ``CLIENT_THREADS``
  concurrent client threads to one :class:`FaultInjectionEngine` (pool
  execution), gathered from response handles.

The concurrent path must be >= 3x the serial old-API throughput AND produce
identical faults and outcomes (ids, activation, failure modes) — batching
must not buy drift.  A generation-only comparison (no execution) is also
recorded for visibility into the model-side batching win.  ``BENCH_QUICK=1``
shrinks the request count for CI smoke runs.
"""

from __future__ import annotations

import os
import threading
import time

from repro import FaultInjectionEngine, GenerateRequest, NeuralFaultInjector, PipelineConfig
from repro.config import EngineConfig, ExecutionConfig, IntegrationConfig
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

BANK_SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
    "Make transfer return a wrong value without raising",
    "Raise an unexpected exception in deposit when the amount is small",
    "Invert the overdraft condition in withdraw",
    "Swallow the gateway error raised during transfer",
    "Introduce a delay into apply_interest that slows every statement run",
    "Make deposit double-count the amount occasionally",
]
KVSTORE_SCENARIOS = [
    "Simulate a timeout in the put function causing an unhandled exception",
    "Make the get function silently swallow errors instead of raising them",
    "Silently corrupt the value returned by the get function",
    "Raise an unexpected exception in delete when the key is missing",
    "Make the compact function return a wrong value without raising",
    "Remove the validation check from put",
]

REQUEST_COUNT = 6 if QUICK else 24
CLIENT_THREADS = 2 if QUICK else 4
MIN_SPEEDUP = 3.0


def _workload() -> list[tuple[str, str]]:
    """(description, target) pairs: distinct requests across two targets."""
    pairs = [(text, "bank") for text in BANK_SCENARIOS] + [
        (text, "kvstore") for text in KVSTORE_SCENARIOS
    ]
    while len(pairs) < REQUEST_COUNT:
        pairs = pairs + pairs
    return pairs[:REQUEST_COUNT]


def _config() -> PipelineConfig:
    return PipelineConfig(
        integration=IntegrationConfig(workload_iterations=25, test_timeout_seconds=5),
        execution=ExecutionConfig(max_workers=2, default_mode="pool"),
        engine=EngineConfig(max_queue_delay_seconds=0.02),
    )


def _fingerprint(fault, outcome) -> tuple:
    """Order-insensitive determinism key, excluding wall-clock noise."""
    if outcome is None:
        return (fault.fault_id, fault.actions.get("template"), None, None)
    return (
        fault.fault_id,
        fault.actions.get("template"),
        outcome.activated,
        outcome.failure_mode.value,
    )


def _serial_old_api(workload, execute: bool):
    """One blocking client on the deprecated surface, old-API defaults."""
    results = []
    with NeuralFaultInjector(_config()) as injector:
        sources = {name: get_target(name).build_source() for name in ("bank", "kvstore")}
        started = time.perf_counter()
        for description, target in workload:
            fault = injector.inject(description, code=sources[target])
            outcome = None
            if execute:
                outcome = injector.integrate_and_test(fault, target, mode="subprocess").outcome
            results.append(_fingerprint(fault, outcome))
        elapsed = time.perf_counter() - started
    return elapsed, results


def _concurrent_engine(workload, execute: bool):
    """CLIENT_THREADS concurrent clients sharing one engine via the scheduler."""
    requests = [
        GenerateRequest(
            description=description,
            target=target,
            execute=execute,
            mode="pool" if execute else None,
            request_id=f"bench-{index}",
        )
        for index, (description, target) in enumerate(workload)
    ]
    with FaultInjectionEngine(_config()) as engine:
        # Warm the worker pools outside the timed region (the serial path's
        # interpreter is likewise already warm); serving deployments pay pool
        # startup once per process, not per burst.
        if execute:
            for name in ("bank", "kvstore"):
                engine.run(
                    GenerateRequest(
                        description=workload[0][0], target=name, execute=True, mode="pool"
                    )
                )
        handles = [None] * len(requests)
        started = time.perf_counter()

        def client(offset: int) -> None:
            for index in range(offset, len(requests), CLIENT_THREADS):
                handles[index] = engine.submit(requests[index])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENT_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        responses = [handle.result(timeout=300) for handle in handles]
        elapsed = time.perf_counter() - started
        stats = engine.serving_stats()
    results = []
    for response in responses:
        assert response.ok, response.error
        payload = response.payload
        results.append(_fingerprint(payload.fault, payload.outcome))
    return elapsed, results, stats


def test_serving_throughput():
    workload = _workload()

    serial_seconds, serial_results = _serial_old_api(workload, execute=True)
    concurrent_seconds, concurrent_results, stats = _concurrent_engine(workload, execute=True)
    speedup = serial_seconds / concurrent_seconds

    gen_serial_seconds, gen_serial_results = _serial_old_api(workload, execute=False)
    gen_concurrent_seconds, gen_concurrent_results, _ = _concurrent_engine(workload, execute=False)
    generation_speedup = gen_serial_seconds / gen_concurrent_seconds

    # Determinism: batching must not change a single fault or outcome.
    assert concurrent_results == serial_results
    assert gen_concurrent_results == gen_serial_results

    generate_batches = [b["size"] for b in stats["batches"] if b["kind"] == "generate"]
    payload = {
        "quick": QUICK,
        "requests": len(workload),
        "client_threads": CLIENT_THREADS,
        "min_speedup": MIN_SPEEDUP,
        "serving": {
            "serial_old_api_seconds": round(serial_seconds, 3),
            "concurrent_engine_seconds": round(concurrent_seconds, 3),
            "speedup": round(speedup, 2),
            "serial_rps": round(len(workload) / serial_seconds, 2),
            "concurrent_rps": round(len(workload) / concurrent_seconds, 2),
        },
        "generation_only": {
            "serial_old_api_seconds": round(gen_serial_seconds, 3),
            "concurrent_engine_seconds": round(gen_concurrent_seconds, 3),
            "speedup": round(generation_speedup, 2),
        },
        "scheduler_batch_sizes": generate_batches,
    }
    table_rows = [
        f"{'workload':<18} {'serial (s)':>11} {'concurrent (s)':>15} {'speedup':>8}",
        f"{'generate+execute':<18} {serial_seconds:>11.3f} {concurrent_seconds:>15.3f} {speedup:>7.1f}x",
        f"{'generate only':<18} {gen_serial_seconds:>11.3f} {gen_concurrent_seconds:>15.3f} {generation_speedup:>7.1f}x",
        f"scheduler batches: {generate_batches}",
    ]
    write_result("serving", payload, table="\n".join(table_rows))

    assert speedup >= MIN_SPEEDUP, (
        f"concurrent serving speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
