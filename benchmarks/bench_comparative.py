"""T-COMP — comparative analysis against conventional fault injection.

Regenerates the table the paper promises as future validation (Section V):
neural fault injection versus the predefined-fault-model baseline and random
mutation, compared on scenario coverage, fault-type coverage, failure
exposure, and estimated manual effort, for the same set of tester scenarios.
"""

from __future__ import annotations

from repro.core import CampaignOrchestrator

from conftest import write_result

SCENARIO_SETS = {
    "bank": [
        "Simulate a timeout in the transfer function causing an unhandled exception",
        "Introduce a race condition in apply_interest under concurrent updates",
        "Make the withdraw function silently swallow errors instead of raising them",
        "Remove the overdraft validation check from withdraw",
        "Silently corrupt the amount returned by the transfer function",
        "Make deposit fail with a network failure 30% of the time",
        "Introduce a memory leak in the transfer function",
        "Introduce an off-by-one error in the interest loop of apply_interest",
    ],
    "ecommerce": [
        "Simulate a timeout in process_transaction causing an unhandled exception",
        "Introduce a race condition in reserve_inventory when orders arrive concurrently",
        "Introduce a resource leak in process_transaction so sessions are never closed",
        "Silently corrupt the total computed by compute_total",
        "Make send_confirmation fail with a network failure",
        "Make validate_cart silently swallow errors",
        "Add a delay of 100 milliseconds to charge_payment",
        "Remove the stock validation check from reserve_inventory",
    ],
}


def run_comparisons(pipeline):
    comparisons = {}
    for target, scenarios in SCENARIO_SETS.items():
        orchestrator = CampaignOrchestrator(pipeline, target=target, mode="inprocess")
        comparisons[target] = (orchestrator.compare(scenarios, budget=len(scenarios) * 2),
                               orchestrator.efficiency_comparison(scenarios))
    return comparisons


def test_comparative_analysis(benchmark, prepared_pipeline):
    comparisons = benchmark.pedantic(run_comparisons, args=(prepared_pipeline,), rounds=1, iterations=1)

    lines = []
    payload = {}
    for target, (comparison, efficiency) in comparisons.items():
        lines.append(f"target: {target}")
        lines.append(
            f"  {'technique':18s} {'scenario_cov':>12s} {'type_cov':>9s} {'exposure':>9s} "
            f"{'modes':>6s} {'effort_min':>11s}"
        )
        for row in comparison.summary_rows():
            lines.append(
                f"  {row['technique']:18s} {row['scenario_coverage']:>12.2f} "
                f"{row['fault_type_coverage']:>9.2f} {row['failure_exposure_rate']:>9.2f} "
                f"{row['distinct_failure_modes']:>6d} {row['effort_minutes']:>11.1f}"
            )
        lines.append(f"  effort speedup (analytical): {efficiency['speedup']:.2f}x")
        payload[target] = {"comparison": comparison.to_dict(), "efficiency": efficiency}

    write_result("comparative", payload, "\n".join(lines))

    for target, (comparison, efficiency) in comparisons.items():
        neural = comparison.techniques["neural"]
        predefined = comparison.techniques["predefined-model"]
        random_baseline = comparison.techniques["random"]
        # Expected shape: neural covers strictly more of the requested scenarios
        # at lower manual effort; baselines cannot express scenario intents.
        assert neural.coverage.scenario_coverage > predefined.coverage.scenario_coverage
        assert neural.coverage.scenario_coverage > random_baseline.coverage.scenario_coverage
        assert neural.effort_minutes < predefined.effort_minutes
        assert efficiency["speedup"] > 1.0
        assert neural.effectiveness.activation_rate > 0.0
