"""BENCH_SHARDED_SERVING — 4-shard consistent-hash serving vs one engine.

Sharded serving exists so execution-heavy traffic spread over several targets
stops convoying on one engine's execution stage.  This benchmark pins that:
two actual ``python -m repro serve`` deployments are spawned — ``--shards 1``
(the classic single-engine server) and ``--shards 4`` (four engine worker
processes behind the consistent-hash router) — and the same execution-heavy
workload (delay/timeout faults across all four builtin targets, submitted
asynchronously by concurrent HTTP clients) is timed against both.

Two invariants are enforced:

* throughput — the 4-shard topology must be >= 2.5x the single-engine
  topology on this workload (each target's requests land on their own shard,
  so the four per-target execution groups overlap instead of serializing);
* byte identity — every request's deterministic payload fields must
  serialize to exactly the same JSON bytes under both topologies.  Routing
  must not buy drift.

``BENCH_QUICK=1`` shrinks the request count but keeps 4 shards — the floor
is gated on quick output too.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Delay-flavoured scenarios: sandbox runs are sleep-bound, so the win
#: measured here is topology (overlapping per-target execution groups), not
#: CPU parallelism — it holds on a single-core runner.  The explicit delay
#: durations are calibrated to the workload's per-function call counts so
#: every request's sandbox run lasts ~2s regardless of target.
SCENARIOS = {
    "ecommerce": [
        "Introduce a delay of 0.04 seconds into the charge_payment function that slows every checkout",
        "Introduce a delay of 0.15 seconds into the reserve_inventory function that slows every order",
    ],
    "kvstore": [
        "Introduce a delay of 0.07 seconds into the put function that slows every write",
        "Introduce a delay of 0.25 seconds into the get function that slows every lookup",
    ],
    "bank": [
        "Introduce a delay of 0.07 seconds into the transfer function that slows every payment",
        "Introduce a delay of 0.25 seconds into the withdraw function that slows every withdrawal",
    ],
    "queue": [
        "Introduce a delay of 0.04 seconds into the publish function that slows every enqueue",
        "Introduce a delay of 0.03 seconds into the consume function that slows every poll",
    ],
}

REQUESTS_PER_TARGET = 3 if QUICK else 4
CLIENT_THREADS = 4
SHARDS = 4
MIN_SPEEDUP = 2.5
POLL_INTERVAL_SECONDS = 0.02


def _workload() -> list[tuple[str, str]]:
    """(description, target) pairs, round-robin over targets so every client
    thread touches several shards."""
    pairs = []
    for index in range(REQUESTS_PER_TARGET):
        for target, scenarios in SCENARIOS.items():
            pairs.append((scenarios[index % len(scenarios)], target))
    return pairs


def _canonical_payload(payload: dict) -> str:
    """Wire payload → canonical JSON of its deterministic fields only.

    Serving observations are excluded: ``batch_size`` (how many requests
    shared a forward pass differs between one engine and four) and the
    outcome's measured ``duration_seconds``/wall-clock fragments.  Everything
    else — the fault, strategy, logprobs, activation, failure mode, execution
    details — must be byte-identical between topologies.
    """
    data = dict(payload)
    data.pop("batch_size", None)
    if data.get("outcome"):
        outcome = {k: v for k, v in data["outcome"].items() if k != "duration_seconds"}
        if isinstance(outcome.get("details"), dict):
            details = dict(outcome["details"])
            if isinstance(details.get("reason"), str):
                details["reason"] = re.sub(
                    r"\d+(?:\.\d+)?s\b", "<wall-clock>s", details["reason"]
                )
            outcome["details"] = details
        data["outcome"] = outcome
    return json.dumps(data, sort_keys=True)


def _spawn_server(shards: int) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro serve --shards N`` and return (process, URL)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--mode",
            "pool",
            "--max-workers",
            "2",
            "--queue-delay",
            "0.002",
            "--shards",
            str(shards),
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    seen: list[str] = []
    while True:
        line = process.stderr.readline()
        if not line:
            process.kill()
            raise RuntimeError(f"server did not start; stderr was {seen!r}")
        if "serving on " in line:
            return process, line.split("serving on ")[1].split(" ")[0]
        seen.append(line.rstrip())


def _http(connection: http.client.HTTPConnection, method: str, path: str, body=None):
    payload = json.dumps(body).encode("utf-8") if body is not None else None
    connection.request(method, path, body=payload, headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    return response.status, json.loads(response.read())


def _concurrent_http(url: str, workload, tag: str):
    """CLIENT_THREADS async submitters + pollers against one deployment."""
    host, port = url.removeprefix("http://").rsplit(":", 1)
    bodies = [
        {
            "description": description,
            "target": target,
            "execute": True,
            "mode": "pool",
            "request_id": f"{tag}-{index}",
        }
        for index, (description, target) in enumerate(workload)
    ]
    payloads: list[str | None] = [None] * len(bodies)
    errors: list[str] = []

    def client(offset: int) -> None:
        connection = http.client.HTTPConnection(host, int(port), timeout=120)
        try:
            mine = list(range(offset, len(bodies), CLIENT_THREADS))
            for index in mine:
                status, ticket = _http(
                    connection, "POST", "/v1/generate?async=1", bodies[index]
                )
                if status != 202:
                    errors.append(f"submit {index}: HTTP {status} {ticket}")
                    return
            for index in mine:
                while True:
                    status, envelope = _http(
                        connection, "GET", f"/v1/requests/{tag}-{index}"
                    )
                    if status == 202:
                        time.sleep(POLL_INTERVAL_SECONDS)
                        continue
                    if status != 200 or envelope["status"] != "ok":
                        errors.append(f"poll {index}: HTTP {status} {envelope}")
                        return
                    payloads[index] = _canonical_payload(envelope["payload"])
                    break
        finally:
            connection.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    assert all(payload is not None for payload in payloads)
    return elapsed, payloads


def _run_topology(shards: int, workload):
    """One deployment: spawn, warm each target's pool, time, drain."""
    process, url = _spawn_server(shards)
    try:
        warm = [(SCENARIOS[target][0], target) for target in SCENARIOS]
        _concurrent_http(url, warm, tag=f"warm{shards}")
        elapsed, payloads = _concurrent_http(url, workload, tag=f"bench{shards}")
        connection = http.client.HTTPConnection(host := url.removeprefix("http://").rsplit(":", 1)[0],
                                                int(url.rsplit(":", 1)[1]), timeout=30)
        _, stats = _http(connection, "GET", "/v1/stats")
        connection.close()
    finally:
        process.send_signal(signal.SIGINT)
        exit_code = process.wait(timeout=120)
    assert exit_code == 0, f"--shards {shards} server did not drain cleanly (exit {exit_code})"
    return elapsed, payloads, stats


def test_sharded_serving_throughput():
    workload = _workload()

    single_seconds, single_payloads, _single_stats = _run_topology(1, workload)
    sharded_seconds, sharded_payloads, sharded_stats = _run_topology(SHARDS, workload)

    # Byte identity: the router must not change a single deterministic
    # payload byte relative to the single-engine server.
    identical = 1.0 if sharded_payloads == single_payloads else 0.0
    assert identical == 1.0, "sharded payloads drifted from the single-engine server"

    speedup = single_seconds / sharded_seconds
    aggregate = sharded_stats["aggregate"]
    per_shard_requests = [
        shard["stats"]["server"]["requests_total"] for shard in sharded_stats["shards"]
    ]

    payload = {
        "quick": QUICK,
        "requests": len(workload),
        "client_threads": CLIENT_THREADS,
        "shards": SHARDS,
        "min_speedup": MIN_SPEEDUP,
        "serving": {
            "single_engine_seconds": round(single_seconds, 3),
            "sharded_seconds": round(sharded_seconds, 3),
            "speedup": round(speedup, 2),
            "identical": identical,
            "single_rps": round(len(workload) / single_seconds, 2),
            "sharded_rps": round(len(workload) / sharded_seconds, 2),
        },
        "aggregate": {
            "requests_total": aggregate["requests_total"],
            "shards": aggregate["shards"],
            "shard_respawns": aggregate["shard_respawns"],
        },
        "per_shard_requests_total": per_shard_requests,
    }
    table_rows = [
        f"{'topology':<16} {'wall (s)':>10} {'rps':>8}",
        f"{'1 engine':<16} {single_seconds:>10.3f} {len(workload) / single_seconds:>8.2f}",
        f"{SHARDS} shards{'':<8} {sharded_seconds:>10.3f} {len(workload) / sharded_seconds:>8.2f}",
        f"speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x); payloads byte-identical: {bool(identical)}",
        f"per-shard requests_total: {per_shard_requests}",
    ]
    write_result("sharded_serving", payload, table="\n".join(table_rows))

    assert speedup >= MIN_SPEEDUP, (
        f"4-shard serving speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
