"""T-NLP — fault-specification extraction accuracy of the NLP engine.

Regenerates the per-field accuracy (fault type, target function, trigger,
handling) of the NLP engine on a labelled corpus of tester-style descriptions
grounded in the e-commerce target, supporting the Section III-B.1 claim that
the engine restructures descriptions into precise fault specifications.
"""

from __future__ import annotations

from repro.nlp import FaultSpecExtractor
from repro.targets import get_target
from repro.types import FaultType, HandlingStyle, TriggerKind

from conftest import write_result

#: (description, expected fault type, expected function, expected trigger, expected handling)
LABELLED_CORPUS = [
    ("Simulate a scenario where a database transaction fails due to a timeout, causing an unhandled "
     "exception within the process_transaction function.",
     FaultType.TIMEOUT, "process_transaction", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Introduce a race condition in reserve_inventory when two orders arrive concurrently",
     FaultType.RACE_CONDITION, "reserve_inventory", TriggerKind.CONDITIONAL, HandlingStyle.UNHANDLED),
    ("Make validate_cart silently swallow errors instead of raising them",
     FaultType.SWALLOWED_EXCEPTION, "validate_cart", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Add a delay of 200 milliseconds to charge_payment 30% of the time",
     FaultType.DELAY, "charge_payment", TriggerKind.PROBABILISTIC, HandlingStyle.UNHANDLED),
    ("Every 3rd call to send_confirmation should fail with a ConnectionError due to a network outage",
     FaultType.NETWORK_FAILURE, "send_confirmation", TriggerKind.ON_NTH_CALL, HandlingStyle.UNHANDLED),
    ("Introduce a memory leak in refund_order so memory grows on every call",
     FaultType.MEMORY_LEAK, "refund_order", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Silently corrupt the total computed by compute_total without raising any error",
     FaultType.DATA_CORRUPTION, "compute_total", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Introduce an off-by-one error in the loop of compute_total so the last item is skipped",
     FaultType.OFF_BY_ONE, "compute_total", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Make charge_payment time out, and introduce a retry mechanism instead of just logging the error",
     FaultType.TIMEOUT, "charge_payment", TriggerKind.ALWAYS, HandlingStyle.RETRY),
    ("Introduce a resource leak in process_transaction so sessions are never closed",
     FaultType.RESOURCE_LEAK, "process_transaction", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Remove the stock validation check from reserve_inventory so oversold carts are accepted",
     FaultType.MISSING_CHECK, "reserve_inventory", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Make open_session hang in an infinite loop when the connection pool is exhausted",
     FaultType.INFINITE_LOOP, "open_session", TriggerKind.CONDITIONAL, HandlingStyle.UNHANDLED),
    ("When the cart is empty, apply_discount should raise an unhandled ValueError",
     FaultType.EXCEPTION, "apply_discount", TriggerKind.CONDITIONAL, HandlingStyle.UNHANDLED),
    ("Make refund_order return the wrong amount, and fall back to a default value on failure",
     FaultType.WRONG_RETURN, "refund_order", TriggerKind.ALWAYS, HandlingStyle.FALLBACK),
    ("Simulate a disk failure affecting close_session so cleanup fails with an OSError",
     FaultType.DISK_FAILURE, "close_session", TriggerKind.ALWAYS, HandlingStyle.UNHANDLED),
    ("Make every 5th call to update the inventory in reserve_inventory fail with a timeout",
     FaultType.TIMEOUT, "reserve_inventory", TriggerKind.ON_NTH_CALL, HandlingStyle.UNHANDLED),
]


def extract_all(extractor, source):
    return [extractor.extract_from_text(text, source) for text, *_ in LABELLED_CORPUS]


def test_nlp_extraction_accuracy(benchmark):
    extractor = FaultSpecExtractor()
    source = get_target("ecommerce").build_source()
    specs = benchmark.pedantic(extract_all, args=(extractor, source), rounds=1, iterations=1)

    hits = {"fault_type": 0, "function": 0, "trigger": 0, "handling": 0}
    rows = []
    for (text, fault_type, function, trigger, handling), spec in zip(LABELLED_CORPUS, specs):
        type_ok = spec.fault_type is fault_type
        function_ok = spec.target.function == function
        trigger_ok = spec.trigger.kind is trigger
        handling_ok = spec.handling is handling
        hits["fault_type"] += type_ok
        hits["function"] += function_ok
        hits["trigger"] += trigger_ok
        hits["handling"] += handling_ok
        rows.append(
            f"  [{'Y' if type_ok else 'n'}{'Y' if function_ok else 'n'}"
            f"{'Y' if trigger_ok else 'n'}{'Y' if handling_ok else 'n'}] {text[:72]}"
        )

    total = len(LABELLED_CORPUS)
    accuracy = {field: count / total for field, count in hits.items()}
    table = "\n".join(
        [f"{field:10s} accuracy: {value:.2f}" for field, value in accuracy.items()]
        + ["per-description hits (type/function/trigger/handling):"]
        + rows
    )
    payload = {"accuracy": accuracy, "corpus_size": total}
    write_result("nlp_extraction", payload, table)

    assert accuracy["fault_type"] >= 0.85
    assert accuracy["function"] >= 0.8
    assert accuracy["trigger"] >= 0.8
    assert accuracy["handling"] >= 0.8
