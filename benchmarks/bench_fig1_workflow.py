"""FIG-1 — the end-to-end workflow of Fig. 1.

Regenerates, for each target system, the per-stage latency breakdown and the
success rate of the six workflow stages (fault definition → NLP processing →
code generation → RLHF refinement → integration → testing).  The paper's
figure is a diagram, not a plot; the reproduced artefact is the demonstration
that every stage executes automatically, plus its cost profile.
"""

from __future__ import annotations

from repro.core import WORKFLOW_STAGES
from repro.rlhf import tester_pool
from repro.targets import target_names

from conftest import write_result

SCENARIOS = {
    "ecommerce": "Simulate a timeout in process_transaction causing an unhandled exception",
    "kvstore": "Silently corrupt the value returned by the get function",
    "bank": "Make the transfer function fail with a network failure",
    "queue": "Make the publish function silently swallow errors instead of raising them",
}


def run_all_workflows(pipeline):
    testers = tester_pool()
    traces = {}
    for index, target in enumerate(target_names()):
        traces[target] = pipeline.run_workflow(
            SCENARIOS[target], target=target, feedback=testers[index % len(testers)], mode="inprocess"
        )
    return traces


def test_fig1_workflow_stage_breakdown(benchmark, prepared_pipeline):
    traces = benchmark.pedantic(run_all_workflows, args=(prepared_pipeline,), rounds=1, iterations=1)

    stage_totals = {stage: 0.0 for stage in WORKFLOW_STAGES}
    completed = 0
    rows = []
    for target, trace in traces.items():
        for stage, seconds in trace.stage_seconds().items():
            stage_totals[stage] += seconds
        completed += int(trace.succeeded)
        rows.append(
            f"{target:10s} stages={len(trace.completed_stages)}/6 "
            f"failure_mode={trace.outcome.failure_mode.value if trace.outcome else 'n/a':24s} "
            f"feedback_rounds={trace.feedback_rounds} total={trace.total_seconds:.3f}s"
        )

    header = "stage latency breakdown (seconds, summed over targets):"
    stage_lines = [f"  {stage:18s} {seconds:.4f}" for stage, seconds in stage_totals.items()]
    table = "\n".join(rows + [header] + stage_lines)
    payload = {
        "traces": {target: trace.to_dict() for target, trace in traces.items()},
        "stage_totals_seconds": stage_totals,
        "workflow_success_rate": completed / len(traces),
    }
    write_result("fig1_workflow", payload, table)

    assert completed == len(traces), "every target must complete the full Fig. 1 workflow"
    for trace in traces.values():
        assert [stage.stage for stage in trace.stages] == list(WORKFLOW_STAGES)
