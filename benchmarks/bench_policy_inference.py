"""BENCH_POLICY_INFERENCE — the vectorized model engine vs the per-sample path.

Extends the BENCH_* trajectory from the execution half (``bench_throughput``,
``bench_dataset_gen``) to the model half: the policy network, decoder, SFT
trainer, and RLHF optimizers now run batched — matrix forward/backward passes,
row-wise decoding, prompt-hash encoder caching, and render memoization.

Three workloads are timed against the seed-style per-sample path (re-created
here as verbatim reference loops over the per-sample APIs, with the caches
disabled — exactly what the code did before vectorization):

* ``sft_epoch`` — supervised fine-tuning over the example set;
* ``rlhf_round`` — one reward-model fit plus one policy-gradient update;
* ``generation`` — repeated multi-prompt greedy generation (the alignment
  probe every RLHF iteration performs).

Each batched workload must beat its per-sample reference by >= 3x AND match
it numerically to 1e-9 (losses, parameters, fault ids) — speed must not buy
drift.  ``BENCH_QUICK=1`` shrinks the workload sizes for CI smoke runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config import ModelConfig, RLHFConfig, SFTConfig
from repro.llm import FaultGenerator, SFTExample, SFTTrainer, reference_decisions
from repro.nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from repro.rlhf.policy_opt import PolicyOptimizer, RewardedSample
from repro.rlhf.preference import PreferenceDataset
from repro.rlhf.reward_model import CandidateFeaturizer, RewardModel
from repro.rng import SeededRNG
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Introduce a race condition in apply_interest under concurrent updates",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
    "Cause deposit to lose updates under load",
    "Make transfer return a wrong value without raising",
    "Inject a delay into apply_interest that slows every statement run",
    "Raise an unexpected exception in deposit when the amount is small",
    "Corrupt the balance bookkeeping inside withdraw",
    "Make apply_interest skip accounts intermittently",
    "Introduce an off-by-one error in the interest calculation",
    "Swallow the gateway error raised during transfer",
    "Return early from withdraw before the ledger is updated",
    "Invert the overdraft condition in withdraw",
    "Make deposit double-count the amount occasionally",
    "Make transfer debit the source account twice for the same movement",
    "Leak the audit log handle opened by apply_interest",
    "Make the statement function report stale balances",
    "Raise a timeout while the ledger lock is held in transfer",
]

PROMPT_COUNT = 10 if QUICK else 20
SFT_REPEATS = 4 if QUICK else 8
SFT_EPOCHS = 2 if QUICK else 4
GENERATION_ROUNDS = 8
CANDIDATES_PER_PROMPT = 4
MIN_SPEEDUP = 3.0
ATOL = 1e-9

#: The seed per-sample path: caches disabled, per-example loops.
UNCACHED = dict(encoder_cache_size=0, render_cache_size=0)


def build_prompts():
    source = get_target("bank").build_source()
    extractor = FaultSpecExtractor()
    analyzer = CodeAnalyzer()
    builder = PromptBuilder()
    prompts = []
    for text in SCENARIOS[:PROMPT_COUNT]:
        spec = extractor.extract_from_text(text, source)
        context = analyzer.analyze(source)
        analyzer.select_function(context, text, hint=spec.target.function)
        prompts.append(builder.build(spec, context))
    return prompts


def max_state_delta(left, right):
    return max(float(np.max(np.abs(left[key] - right[key]))) for key in left)


# -- per-sample reference implementations (the pre-vectorization loops) --------


def per_sample_sft_train(generator, config, examples):
    policy = generator.policy
    encoder = generator.encoder
    rng = SeededRNG(config.seed, namespace="sft")
    encoded = [(encoder.encode(example.prompt), example.target) for example in examples]
    epoch_losses = []
    for _epoch in range(config.epochs):
        ordering = rng.shuffle(list(range(len(encoded))))
        epoch_loss = 0.0
        batch = policy.zero_gradients()
        for position, index in enumerate(ordering):
            features, target = encoded[index]
            forward = policy.forward(features)
            epoch_loss += -forward.log_probability(target)
            batch.add(policy.backward(forward, target))
            if batch.examples >= config.batch_size or position == len(ordering) - 1:
                policy.apply_gradients(batch, learning_rate=config.learning_rate)
                batch = policy.zero_gradients()
        epoch_losses.append(epoch_loss / len(encoded))
    return epoch_losses


def per_sample_reward_fit(model, config, dataset, l2=1e-3):
    losses = []
    for _epoch in range(config.reward_epochs):
        gradient = np.zeros_like(model.weights)
        loss = 0.0
        for pair in dataset:
            difference = pair.chosen_features - pair.rejected_features
            probability = 1.0 / (1.0 + np.exp(-(model.weights @ difference)))
            loss += -np.log(probability + 1e-12) * pair.margin
            gradient += (probability - 1.0) * difference * pair.margin
        gradient = gradient / len(dataset) + l2 * model.weights
        model.weights -= config.reward_learning_rate * gradient
        losses.append(float(loss / len(dataset)))
    return losses


def per_sample_policy_update(policy, reference, encoder, config, samples):
    beta = config.kl_beta
    shaped_rewards = []
    encoded = []
    for sample in samples:
        features = encoder.encode(sample.prompt)
        logprob = policy.log_probability(features, sample.decisions)
        ref_logprob = reference.log_probability(features, sample.decisions)
        shaped = sample.reward - beta * (logprob - ref_logprob)
        shaped_rewards.append(shaped)
        encoded.append((features, sample.decisions, shaped))
    batch_mean = sum(shaped_rewards) / len(shaped_rewards)
    baseline = batch_mean  # first update: baseline initialises to the batch mean
    momentum = config.baseline_momentum
    baseline = momentum * baseline + (1.0 - momentum) * batch_mean
    gradients = policy.zero_gradients()
    for features, decisions, shaped in encoded:
        forward = policy.forward(features)
        gradients.add(policy.backward(forward, decisions, scale=shaped - baseline))
    policy.apply_gradients(gradients, learning_rate=config.policy_learning_rate)


# -- workloads -----------------------------------------------------------------


def measure_sft(prompts):
    examples = [
        SFTExample(prompt=prompts[index % len(prompts)], target=reference_decisions(prompts[index % len(prompts)].spec))
        for index in range(len(prompts) * SFT_REPEATS)
    ]
    config = SFTConfig(epochs=SFT_EPOCHS, batch_size=16)

    serial_generator = FaultGenerator(ModelConfig(**UNCACHED))
    started = time.perf_counter()
    serial_losses = per_sample_sft_train(serial_generator, config, examples)
    serial_seconds = time.perf_counter() - started

    batched_generator = FaultGenerator(ModelConfig())
    started = time.perf_counter()
    report = SFTTrainer(batched_generator, config).train(examples)
    batched_seconds = time.perf_counter() - started

    loss_delta = max(abs(a - b) for a, b in zip(report.epoch_losses, serial_losses))
    param_delta = max_state_delta(
        batched_generator.policy.state_dict(), serial_generator.policy.state_dict()
    )
    assert loss_delta <= ATOL, f"SFT losses drifted by {loss_delta}"
    assert param_delta <= ATOL, f"SFT parameters drifted by {param_delta}"
    return {
        "examples": len(examples),
        "epochs": SFT_EPOCHS,
        "per_sample_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2),
        "max_abs_loss_delta": loss_delta,
        "max_abs_param_delta": param_delta,
    }


def measure_rlhf_round(prompts):
    # Candidate rounds, ratings, and features are fixed inputs to the round;
    # build them once outside the timed region with a dedicated generator.
    staging = FaultGenerator(ModelConfig())
    featurizer = CandidateFeaturizer(staging.encoder)
    preferences = PreferenceDataset()
    samples = []
    rating_rng = SeededRNG(99, namespace="bench-ratings")
    for prompt in prompts:
        candidates = staging.candidates(prompt, count=CANDIDATES_PER_PROMPT)
        featurized = [
            (candidate.fault.fault_id, featurizer.featurize(prompt, candidate))
            for candidate in candidates
        ]
        ratings = sorted((rating_rng.uniform(1.0, 5.0) for _ in candidates), reverse=True)
        preferences.add_ranking(featurized, margins=ratings)
        samples.extend(
            RewardedSample(prompt=prompt, decisions=candidate.decisions, reward=rating)
            for candidate, rating in zip(candidates, ratings)
        )
    config = RLHFConfig()
    dimension = featurizer.dimension

    serial_generator = FaultGenerator(ModelConfig(**UNCACHED))
    serial_reference = serial_generator.policy.clone()
    serial_reward = RewardModel(dimension, config)
    started = time.perf_counter()
    serial_losses = per_sample_reward_fit(serial_reward, config, preferences)
    per_sample_policy_update(
        serial_generator.policy, serial_reference, serial_generator.encoder, config, samples
    )
    serial_seconds = time.perf_counter() - started

    batched_generator = FaultGenerator(ModelConfig())
    batched_reward = RewardModel(dimension, config)
    optimizer = PolicyOptimizer(
        policy=batched_generator.policy, encoder=batched_generator.encoder, config=config
    )
    started = time.perf_counter()
    report = batched_reward.fit(preferences)
    optimizer.update(samples)
    batched_seconds = time.perf_counter() - started

    loss_delta = max(abs(a - b) for a, b in zip(report.losses, serial_losses))
    reward_delta = float(np.max(np.abs(batched_reward.weights - serial_reward.weights)))
    param_delta = max_state_delta(
        batched_generator.policy.state_dict(), serial_generator.policy.state_dict()
    )
    assert loss_delta <= ATOL, f"reward losses drifted by {loss_delta}"
    assert reward_delta <= ATOL, f"reward weights drifted by {reward_delta}"
    assert param_delta <= ATOL, f"policy parameters drifted by {param_delta}"
    return {
        "samples": len(samples),
        "preference_pairs": len(preferences),
        "per_sample_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2),
        "max_abs_loss_delta": loss_delta,
        "max_abs_param_delta": max(param_delta, reward_delta),
    }


def measure_generation(prompts):
    serial_generator = FaultGenerator(ModelConfig(**UNCACHED))
    started = time.perf_counter()
    serial_rounds = [
        [serial_generator.generate(prompt, greedy=True) for prompt in prompts]
        for _round in range(GENERATION_ROUNDS)
    ]
    serial_seconds = time.perf_counter() - started

    batched_generator = FaultGenerator(ModelConfig())
    started = time.perf_counter()
    batched_rounds = [
        batched_generator.generate_batch(prompts, greedy=True)
        for _round in range(GENERATION_ROUNDS)
    ]
    batched_seconds = time.perf_counter() - started

    logprob_delta = 0.0
    for serial_round, batched_round in zip(serial_rounds, batched_rounds):
        for serial_candidate, batched_candidate in zip(serial_round, batched_round):
            assert serial_candidate.fault.fault_id == batched_candidate.fault.fault_id
            assert serial_candidate.decisions == batched_candidate.decisions
            assert serial_candidate.fault.code == batched_candidate.fault.code
            logprob_delta = max(
                logprob_delta, abs(serial_candidate.logprob - batched_candidate.logprob)
            )
    assert logprob_delta <= ATOL, f"generation logprobs drifted by {logprob_delta}"
    cache_info = batched_generator.grammar.cache_info()
    return {
        "prompts": len(prompts),
        "rounds": GENERATION_ROUNDS,
        "generations": len(prompts) * GENERATION_ROUNDS,
        "per_sample_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2),
        "render_cache_hits": cache_info["hits"],
        "max_abs_logprob_delta": logprob_delta,
    }


def test_policy_inference_throughput():
    prompts = build_prompts()
    workloads = {
        "sft_epoch": measure_sft(prompts),
        "rlhf_round": measure_rlhf_round(prompts),
        "generation": measure_generation(prompts),
    }

    rows = ["workload       per-sample-s   batched-s   speedup"]
    for label, stats in workloads.items():
        rows.append(
            f"{label:<14} {stats['per_sample_seconds']:>12.4f}   {stats['batched_seconds']:>9.4f}"
            f"   {stats['speedup']:>7.2f}"
        )
    payload = {"quick": QUICK, "min_speedup": MIN_SPEEDUP, "workloads": workloads}
    write_result("policy_inference", payload, table="\n".join(rows))

    # The acceptance bar: every batched model workload beats per-sample >= 3x.
    for label, stats in workloads.items():
        assert stats["speedup"] >= MIN_SPEEDUP, (label, payload)
