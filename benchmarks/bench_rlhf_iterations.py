"""T-RLHF — alignment versus feedback iterations.

Regenerates the series behind the paper's iterative-refinement claim
(Sections III-B.3 and IV-3): tester alignment, mean rating, and reward-model
accuracy as a function of the number of RLHF iterations, starting from the
supervised-fine-tuned policy.
"""

from __future__ import annotations

from repro.config import ModelConfig, RLHFConfig
from repro.llm import FaultGenerator, SFTTrainer
from repro.rlhf import RLHFTrainer, tester_pool
from repro.targets import get_target

from conftest import write_result

SCENARIOS = [
    "Simulate a timeout in process_transaction causing an unhandled exception",
    "Introduce a race condition in reserve_inventory under concurrent checkouts",
    "Make validate_cart silently swallow errors instead of raising them",
    "Silently corrupt the total computed by compute_total",
    "Make send_confirmation fail with a network failure intermittently",
    "Introduce a memory leak in charge_payment",
]

ITERATIONS = 6


def build_prompts(pipeline):
    source = get_target("ecommerce").build_source()
    prompts = []
    for text in SCENARIOS:
        spec, context = pipeline.define_fault(text, code=source)
        prompts.append(pipeline.build_prompt(spec, context))
    return prompts


def run_rlhf(pipeline, prompts):
    # A fresh generator is fine-tuned on the pipeline's dataset, then RLHF runs
    # with the unconstrained policy so that alignment gains are attributable to
    # the feedback loop rather than to spec-constrained decoding.
    generator = FaultGenerator(ModelConfig(constrain_to_spec=False))
    examples = pipeline.dataset_generator.to_sft_examples(pipeline.dataset)
    SFTTrainer(generator, pipeline.config.sft).train(examples)
    trainer = RLHFTrainer(
        generator,
        tester_pool(),
        config=RLHFConfig(iterations=ITERATIONS, candidates_per_iteration=4, policy_learning_rate=0.15),
    )
    initial_alignment = trainer.alignment(prompts)
    report = trainer.run(prompts)
    return initial_alignment, report


def test_rlhf_alignment_over_iterations(benchmark, prepared_pipeline):
    prompts = build_prompts(prepared_pipeline)
    initial_alignment, report = benchmark.pedantic(
        run_rlhf, args=(prepared_pipeline, prompts), rounds=1, iterations=1
    )

    lines = [f"iteration 0 (before RLHF): alignment={initial_alignment:.3f}"]
    for stats in report.iterations:
        lines.append(
            f"iteration {stats.iteration + 1}: alignment={stats.alignment:.3f} "
            f"mean_rating={stats.mean_rating:.2f} best_rating={stats.best_rating:.2f} "
            f"reward_model_acc={stats.reward_model_accuracy:.2f} accepted={stats.accepted_fraction:.2f}"
        )
    payload = {
        "initial_alignment": initial_alignment,
        "iterations": [stats.to_dict() for stats in report.iterations],
        "preference_pairs": report.preference_pairs,
    }
    write_result("rlhf_iterations", payload, "\n".join(lines))

    # Expected shape: tester ratings of the sampled candidates improve over the
    # course of RLHF, greedy alignment never degrades, and the reward model
    # orders candidate pairs much better than chance.
    assert report.iterations[-1].mean_rating > report.iterations[0].mean_rating
    assert report.final_alignment >= initial_alignment - 1e-6
    assert report.iterations[-1].reward_model_accuracy > 0.6
    assert report.preference_pairs > 0
