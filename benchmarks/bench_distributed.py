"""BENCH_DISTRIBUTED — elastic localhost workers vs the serial seed path.

Two promises from docs/DISTRIBUTED.md are measured and gated:

* ``distributed`` — a campaign fanned out over **4 localhost workers** through
  the TCP lease protocol must beat the serial seed path (one ``subprocess.run``
  per fault, cold interpreter each time) by **>= 3x**, while producing
  observation-for-observation **byte-identical** outcomes.  Gated via
  ``configs.distributed.speedup_vs_serial_subprocess >= 3.0``.
* ``chaos_recovery`` — with the self-chaos harness SIGKILLing remote workers
  mid-lease, the coordinator's requeue/retry machinery must still converge on
  payloads byte-identical to a fault-free distributed run (``identical`` is
  1.0 only when every payload matches; gated at 1.0).

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

from repro.config import (
    ChaosConfig,
    DistributedConfig,
    ExecutionConfig,
    IntegrationConfig,
    ResilienceConfig,
)
from repro.distributed import DistributedPool
from repro.integration import SandboxRunner
from repro.targets import get_target

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

TASKS = 6 if QUICK else 16
ITERATIONS = 10 if QUICK else 25
WORKERS = 4
#: distributed wall-clock must beat one-subprocess-per-fault by this factor.
MIN_SPEEDUP = 3.0
#: chaos batch size is pinned so the seeded crash schedule is known to kill
#: at least one remote worker (seed 7, 6 tasks -> crash fires at index 2).
CHAOS_TASKS = 6

CHAOS = ChaosConfig(
    enabled=True,
    seed=31,
    worker_crash_probability=0.3,
    task_delay_probability=0.3,
    task_delay_seconds=0.02,
    drop_result_probability=0.3,
)


def _fingerprint(observation) -> str:
    """Canonical bytes of one observation, wall-clock measurements excluded."""
    result = observation.result
    return json.dumps(
        {
            "completed": observation.completed,
            "timed_out": observation.timed_out,
            "harness_error": observation.harness_error,
            "result": None
            if result is None
            else {
                "target": result.target,
                "completed": result.completed,
                "metrics": result.metrics,
                "violations": result.violations,
                "error_type": result.error_type,
                "error_message": result.error_message,
                "detected_errors": result.detected_errors,
            },
        },
        sort_keys=True,
    )


def _stable(payload: dict) -> dict:
    """A pool payload with the wall-clock measurement stripped."""
    stable = {k: v for k, v in payload.items() if k != "result"}
    stable["result"] = {
        k: v for k, v in payload.get("result", {}).items() if k != "duration_seconds"
    }
    return stable


def measure_fanout(sources: list[str]) -> tuple[dict, dict]:
    """Serial seed path vs 4 distributed localhost workers, same campaign."""
    config = IntegrationConfig(test_timeout_seconds=10.0)
    timings: dict[str, float] = {}
    prints: dict[str, list[str]] = {}

    with SandboxRunner(config, execution=ExecutionConfig(max_workers=1)) as runner:
        started = time.perf_counter()
        serial = runner.run_batch(
            "bank", sources, seed=5, iterations=ITERATIONS, mode="subprocess"
        )
        timings["serial-subprocess"] = time.perf_counter() - started
        prints["serial-subprocess"] = [_fingerprint(o) for o in serial]

    execution = ExecutionConfig(
        max_workers=WORKERS, distributed=DistributedConfig(workers=WORKERS)
    )
    with SandboxRunner(config, execution=execution) as runner:
        # One throwaway batch so worker spawn / import cost is not measured —
        # mirrors how a long campaign amortises fleet start-up.
        runner.run_batch("bank", sources[:1], seed=0, iterations=ITERATIONS, mode="distributed")
        started = time.perf_counter()
        fanned = runner.run_batch(
            "bank", sources, seed=5, iterations=ITERATIONS, mode="distributed"
        )
        timings["distributed"] = time.perf_counter() - started
        prints["distributed"] = [_fingerprint(o) for o in fanned]
        stats = runner.distributed_stats()

    # Byte-identical outcomes, in submission order, regardless of placement.
    assert prints["distributed"] == prints["serial-subprocess"]

    serial_seconds = timings["serial-subprocess"]
    configs = {}
    for label, elapsed in timings.items():
        configs[label] = {
            "seconds": round(elapsed, 3),
            "faults_per_second": round(len(sources) / elapsed, 2) if elapsed else None,
            "speedup_vs_serial_subprocess": round(serial_seconds / elapsed, 2),
        }
    configs["distributed"]["workers"] = stats["workers"]
    configs["distributed"]["leases"] = stats["leases"]
    return configs, stats


def measure_chaos_recovery() -> dict:
    """Chaotic distributed batches must converge on the fault-free bytes."""
    sources = [get_target("bank").build_source()] * CHAOS_TASKS

    def run(resilience: ResilienceConfig | None):
        with DistributedPool(
            max_workers=3,
            task_timeout_seconds=10.0,
            resilience=resilience,
            distributed=DistributedConfig(workers=3),
        ) as pool:
            payloads = pool.run_batch("bank", sources, seed=7, iterations=ITERATIONS)
            return payloads, pool.stats()

    clean, _ = run(None)
    chaotic, stats = run(ResilienceConfig(chaos=CHAOS))
    identical = [_stable(p) for p in chaotic] == [_stable(p) for p in clean]
    return {
        "workers": 3,
        "tasks": CHAOS_TASKS,
        "identical": 1.0 if identical else 0.0,
        "requeues": stats["requeues"],
        "rebalances": stats["rebalances"],
        "retries": stats["retries"],
        "pool_rebuilds": stats["pool_rebuilds"],
    }


def test_distributed_fanout_and_recovery():
    sources = [get_target("bank").build_source()] * TASKS
    configs, stats = measure_fanout(sources)
    chaos_recovery = measure_chaos_recovery()

    rows = ["config                 seconds   faults/sec   speedup-vs-serial"]
    for label, entry in configs.items():
        rows.append(
            f"{label:<22} {entry['seconds']:>7.2f}   {entry['faults_per_second']:>10.2f}"
            f"   {entry['speedup_vs_serial_subprocess']:>17.2f}"
        )
    rows.append(
        f"chaos identical: {chaos_recovery['identical']:.1f}"
        f"   (workers killed and requeued: {chaos_recovery['requeues']})"
    )
    payload = {
        "quick": QUICK,
        "tasks": TASKS,
        "workers": WORKERS,
        "min_speedup": MIN_SPEEDUP,
        "configs": configs,
        "chaos_recovery": chaos_recovery,
    }
    write_result("distributed", payload, table="\n".join(rows))

    # The acceptance bars: remote fan-out pays for its sockets, and killing
    # remote workers mid-campaign never changes results.
    assert configs["distributed"]["speedup_vs_serial_subprocess"] >= MIN_SPEEDUP, payload
    assert chaos_recovery["identical"] == 1.0, payload
    assert chaos_recovery["requeues"] > 0, payload
