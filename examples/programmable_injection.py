"""Using the programmable fault-injection substrate directly (ProFIPy-style).

The neural pipeline sits on top of a conventional programmable injector; this
example uses that substrate on its own: define a fault load, apply it to the
key-value store target, run the workload for every mutant, and print the
observed failure modes — the classic SFI campaign workflow.

Run with::

    python examples/programmable_injection.py
"""

from __future__ import annotations

from repro import IntegrationConfig
from repro.injection import FaultLoad, ProgrammableInjector
from repro.integration import CampaignReport, ExperimentRunner
from repro.targets import get_target


def main() -> None:
    target = get_target("kvstore")
    source = target.build_source()

    injector = ProgrammableInjector()
    scan = injector.locator.scan(source)
    print(f"Target '{target.name}': {len(scan)} injection points across "
          f"{len(scan.by_function())} functions and {len(scan.by_operator())} operators.")

    faultload = (
        FaultLoad(name="kvstore-campaign")
        .add("negate_condition", "put", label="invert key validation")
        .add("remove_lock", "delete", label="race on delete")
        .add("wrong_return_value", "get", label="stale read")
        .add("swallow_exception", "*", label="silent error handling")
        .add("resource_leak", "write_snapshot_to", label="leaked file handle")
        .add("arithmetic_corruption", "*", label="corrupted computation")
        .add("raise_timeout", "compact", label="compaction timeout")
    )
    faults = injector.inject(source, faultload)
    print(f"\nFault load '{faultload.name}' resolved to {len(faults)} concrete faults:")
    for applied in faults:
        print(f"  [{applied.operator:22s}] {applied.description}")

    runner = ExperimentRunner(target, config=IntegrationConfig(workload_iterations=30))
    batch = runner.run_batch_applied(faults, mode="inprocess")
    report = CampaignReport.from_batches([batch], name="kvstore-campaign")

    print("\nFailure-mode distribution:")
    print(report.to_table())

    print("\nExample patch (first fault):")
    print(faults[0].patch.diff)


if __name__ == "__main__":
    main()
