"""The paper's running example (Section III-A) as an executable session.

A tester wants to harden the ``process_transaction`` function of an e-commerce
application.  Iteration 1 produces a database-timeout fault with no real error
handling; the tester replies "introduce a retry mechanism instead of just
logging the error", and iteration 2 produces the refined fault.  The refined
fault is then integrated into the e-commerce target and its test workload is
executed, closing the Fig. 1 loop.

Run with::

    python examples/running_example.py
"""

from __future__ import annotations

from repro import DatasetConfig, NeuralFaultInjector, PipelineConfig, SFTConfig
from repro.core import RefinementSession
from repro.targets import get_target

DESCRIPTION = (
    "Simulate a scenario where a database transaction fails due to a timeout, "
    "causing an unhandled exception within the process_transaction function."
)
FEEDBACK = "introduce a retry mechanism instead of just logging the error"


def main() -> None:
    injector = NeuralFaultInjector(
        PipelineConfig(dataset=DatasetConfig(samples_per_target=30), sft=SFTConfig(epochs=5))
    )
    injector.prepare()
    target = get_target("ecommerce")

    session = RefinementSession(injector, DESCRIPTION, code=target.build_source())

    print("=== Iteration 1: initial generation ===")
    first = session.propose()
    print(first.fault.code)

    print(f'=== Tester feedback: "{FEEDBACK}" ===\n')
    second = session.give_feedback(FEEDBACK)

    print("=== Iteration 2: refined generation ===")
    print(second.fault.code)

    print("=== Automated integration and testing ===")
    record = injector.integrate_and_test(second.fault, target, mode="inprocess")
    outcome = record.outcome
    print(f"failure mode : {outcome.failure_mode.value}")
    print(f"activated    : {outcome.activated}")
    print(f"explanation  : {outcome.details.get('reason')}")

    print("\nSession history:")
    for turn in session.history():
        print(f"  iteration {turn['iteration']}: template={turn['template']} "
              f"handling={turn['handling']} critique={turn['critique']!r}")


if __name__ == "__main__":
    main()
