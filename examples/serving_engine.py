"""Serve concurrent clients through the typed service layer.

Four client threads submit generate+execute requests to one shared
:class:`FaultInjectionEngine`; the continuous-batching scheduler coalesces
their work into batched forward passes and pooled sandbox batches, and each
client gets back a versioned response envelope.  The CLI equivalent of one
of these requests is::

    python -m repro generate --target bank --execute --mode pool \
        --description "Simulate a timeout in the transfer function" --json

Run with:
    PYTHONPATH=src python examples/serving_engine.py
"""

from __future__ import annotations

import threading

from repro import FaultInjectionEngine, GenerateRequest, PipelineConfig
from repro.config import EngineConfig, ExecutionConfig

SCENARIOS = [
    ("Simulate a timeout in the transfer function causing an unhandled exception", "bank"),
    ("Make the withdraw function silently swallow errors instead of raising them", "bank"),
    ("Silently corrupt the amount returned by the transfer function", "bank"),
    ("Remove the overdraft validation check from withdraw", "bank"),
    ("Simulate a timeout in the put function causing an unhandled exception", "kvstore"),
    ("Make the get function silently swallow errors instead of raising them", "kvstore"),
    ("Silently corrupt the value returned by the get function", "kvstore"),
    ("Raise an unexpected exception in delete when the key is missing", "kvstore"),
]
CLIENTS = 4


def main() -> None:
    config = PipelineConfig(
        execution=ExecutionConfig(max_workers=2, default_mode="pool"),
        engine=EngineConfig(max_queue_delay_seconds=0.02),
    )
    with FaultInjectionEngine(config) as engine:
        requests = [
            GenerateRequest(
                description=text, target=target, execute=True, request_id=f"client-{index}"
            )
            for index, (text, target) in enumerate(SCENARIOS)
        ]
        handles = [None] * len(requests)

        def client(offset: int) -> None:
            for index in range(offset, len(requests), CLIENTS):
                handles[index] = engine.submit(requests[index])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for handle in handles:
            response = handle.result(timeout=120)
            if not response.ok:
                print(f"[{response.request_id}] ERROR {response.error.type}: {response.error.message}")
                continue
            payload = response.payload
            print(
                f"[{response.request_id}] {payload.fault.fault_id} "
                f"template={payload.fault.actions.get('template')} "
                f"failure={payload.outcome.failure_mode.value} "
                f"batch={payload.batch_size} "
                f"({response.timings.total_seconds * 1000:.0f}ms)"
            )

        sizes = [b["size"] for b in engine.serving_stats()["batches"] if b["kind"] == "generate"]
        print(f"scheduler generate-batch sizes: {sizes}")


if __name__ == "__main__":
    main()
