"""Dataset generation and fine-tuning (Section IV-1 of the paper).

Sweeps the programmable SFI tool over the built-in target systems to build a
(description, original code, faulty code) dataset, saves it as JSONL, splits
it, fine-tunes the generation policy on the training split, and reports the
held-out decision accuracy before and after fine-tuning.

Run with::

    python examples/dataset_and_finetuning.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DatasetConfig, ModelConfig, SFTConfig
from repro.dataset import DatasetGenerator, load_jsonl, save_jsonl, split_dataset
from repro.llm import FaultGenerator, SFTTrainer


def main() -> None:
    generator = DatasetGenerator(DatasetConfig(samples_per_target=60, max_faults_per_function=4))
    dataset = generator.generate()
    print(f"Generated {len(dataset)} documented faults "
          f"({len(dataset.fault_type_counts())} fault types) "
          f"from {len(dataset.targets())} target systems.")
    print("Fault-type distribution:")
    for fault_type, count in sorted(dataset.fault_type_counts().items()):
        print(f"  {fault_type:22s} {count}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "faults.jsonl"
        save_jsonl(dataset, path)
        reloaded = load_jsonl(path)
        print(f"\nRound-tripped dataset through {path.name}: {len(reloaded)} records")

    splits = split_dataset(dataset)
    print(f"Splits: {splits.sizes()}")

    train_examples = generator.to_sft_examples(splits.train)
    test_examples = generator.to_sft_examples(splits.test)

    fault_generator = FaultGenerator(ModelConfig())
    trainer = SFTTrainer(fault_generator, SFTConfig(epochs=8))

    before = trainer.evaluate(test_examples)
    report = trainer.train(train_examples)
    after = trainer.evaluate(test_examples)

    print("\nSupervised fine-tuning on the SFI-generated dataset:")
    print(f"  training loss : {report.initial_loss:.3f} -> {report.final_loss:.3f}")
    print(f"  held-out slot accuracy : {before['slot_accuracy']:.3f} -> {after['slot_accuracy']:.3f}")
    print(f"  held-out exact match   : {before['exact_match']:.3f} -> {after['exact_match']:.3f}")


if __name__ == "__main__":
    main()
