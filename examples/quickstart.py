"""Quickstart: from a natural-language fault description to faulty code.

Run with::

    python examples/quickstart.py

The script prepares the pipeline (SFI dataset generation + supervised
fine-tuning), then turns a one-sentence fault description plus a code snippet
into an executable faulty version of that code — the core promise of the
paper's methodology.
"""

from __future__ import annotations

from repro import DatasetConfig, NeuralFaultInjector, PipelineConfig, SFTConfig

TARGET_CODE = '''
def process_transaction(transaction_details):
    """Charge the customer and record the order."""
    total = 0.0
    for item in transaction_details["items"]:
        total += item["price"] * item["qty"]
    receipt = {"total": round(total, 2), "status": "charged"}
    return receipt
'''

DESCRIPTION = (
    "Simulate a scenario where a database transaction fails due to a timeout, "
    "causing an unhandled exception within the process_transaction function."
)


def main() -> None:
    config = PipelineConfig(
        dataset=DatasetConfig(samples_per_target=30),
        sft=SFTConfig(epochs=5),
    )
    injector = NeuralFaultInjector(config)

    print("Preparing the pipeline (dataset generation + supervised fine-tuning)...")
    dataset = injector.prepare()
    print(f"  generated {len(dataset)} training faults "
          f"across targets {dataset.targets()}")
    print(f"  SFT loss: {injector.sft_report.initial_loss:.2f} -> "
          f"{injector.sft_report.final_loss:.2f}")

    print("\nTester description:")
    print(f"  {DESCRIPTION}")

    spec, context = injector.define_fault(DESCRIPTION, code=TARGET_CODE)
    print("\nStructured fault specification extracted by the NLP engine:")
    print(f"  fault type : {spec.fault_type.value}")
    print(f"  target     : {spec.target.function}")
    print(f"  trigger    : {spec.trigger.kind.value}")
    print(f"  handling   : {spec.handling.value}")
    print(f"  confidence : {spec.confidence}")

    prompt = injector.build_prompt(spec, context)
    candidate = injector.generate_fault(prompt)
    print("\nGenerated faulty code:")
    print(candidate.fault.code)

    print("Decisions taken by the generation model:")
    for slot, value in candidate.decisions.to_dict().items():
        print(f"  {slot:10s}: {value}")


if __name__ == "__main__":
    main()
