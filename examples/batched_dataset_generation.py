"""Pooled, memory-bounded batch execution end to end.

Demonstrates the two batch workloads that run through the shared execution
engine (``repro.execution``):

1. **Validated dataset generation** — every applied fault candidate is
   executed against its target as one pooled sandbox batch, so the dataset is
   backed by evidence that each faulty module actually loads, at a fraction
   of the serial subprocess cost (see ``benchmarks/bench_dataset_gen.py``).
2. **RLHF batch scoring** — each round of generation candidates is integrated
   and executed as a single batch, and the execution evidence (integration
   failures, faults that never activate) flows into the simulated testers'
   ratings.

See ``docs/EXECUTION.md`` for how to pick a mode and size the batches.

Run with::

    python examples/batched_dataset_generation.py
"""

from __future__ import annotations

from repro import (
    DatasetConfig,
    IntegrationConfig,
    NeuralFaultInjector,
    PipelineConfig,
    RLHFConfig,
    SFTConfig,
)
from repro.config import ExecutionConfig
from repro.targets import get_target


def main() -> None:
    config = PipelineConfig(
        dataset=DatasetConfig(
            samples_per_target=10,
            validate_candidates=True,      # execute every candidate in the sandbox
        ),
        sft=SFTConfig(epochs=3),
        rlhf=RLHFConfig(iterations=2, candidates_per_iteration=3),
        integration=IntegrationConfig(workload_iterations=15, test_timeout_seconds=5),
        # One persistent worker pool serves dataset validation, RLHF scoring,
        # and campaign execution; batch_size bounds in-flight task payloads.
        execution=ExecutionConfig(default_mode="pool", max_workers=4, batch_size=16),
    )
    # The context manager releases the worker pools and scratch dirs on exit.
    with NeuralFaultInjector(config) as pipeline:
        # -- 1. pooled dataset generation (+ supervised fine-tuning) --------------
        dataset = pipeline.prepare()
        stats = pipeline.dataset_generator.stats
        print(f"Generated {len(dataset)} validated fault records "
              f"across {len(dataset.targets())} targets.")
        for batch in stats.batches:
            print(f"  [{batch['target']:10s}] {batch['candidates']} candidates -> "
                  f"{batch['kept']} kept, {batch['discarded']} discarded ({batch['mode']})")

        # -- 2. RLHF with pooled batch scoring ------------------------------------
        target = get_target("bank")
        scenarios = [
            "Simulate a timeout in the transfer function causing an unhandled exception",
            "Silently corrupt the amount returned by the transfer function",
        ]
        prompts = []
        for scenario in scenarios:
            spec, context = pipeline.define_fault(scenario, code=target.build_source())
            prompts.append(pipeline.build_prompt(spec, context))

        report = pipeline.run_rlhf(prompts, target="bank")
        print("\nRLHF with execution-backed batch scoring on the bank target:")
        for stats_row in report.iterations:
            print(f"  iteration {stats_row.iteration}: mean rating {stats_row.mean_rating:.2f}, "
                  f"alignment {stats_row.alignment:.3f}, "
                  f"accepted {stats_row.accepted_fraction:.0%}")
        print(f"Alignment {report.initial_alignment:.3f} -> {report.final_alignment:.3f}")


if __name__ == "__main__":
    main()
