"""Comparative campaign: neural fault injection versus conventional baselines.

Runs the same set of tester scenarios against the bank ledger target with

* the neural pipeline (NL scenarios -> generated faults -> automated testing),
* the conventional predefined-fault-model injector, and
* random mutation,

then prints the coverage / effectiveness / effort comparison the paper promises
as future validation (Section V).

Run with::

    python examples/campaign_comparison.py
"""

from __future__ import annotations

from repro import DatasetConfig, IntegrationConfig, NeuralFaultInjector, PipelineConfig, SFTConfig
from repro.core import CampaignOrchestrator

SCENARIOS = [
    "Simulate a timeout in the transfer function so the operation fails with an unhandled exception",
    "Introduce a race condition in apply_interest when two updates run concurrently",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Introduce an off-by-one error in the interest calculation loop of apply_interest",
    "Make deposit fail with a network failure 30% of the time",
    "Introduce a memory leak in the transfer function so memory grows on every call",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
]


def main() -> None:
    injector = NeuralFaultInjector(
        PipelineConfig(
            dataset=DatasetConfig(samples_per_target=30),
            sft=SFTConfig(epochs=5),
            integration=IntegrationConfig(workload_iterations=25, test_timeout_seconds=20),
        )
    )
    injector.prepare()

    orchestrator = CampaignOrchestrator(injector, target="bank", mode="inprocess")
    comparison = orchestrator.compare(SCENARIOS, budget=len(SCENARIOS) * 2)

    print(f"Target: {comparison.target}")
    header = (
        f"{'technique':18s} {'scenario cov.':>14s} {'type cov.':>10s} "
        f"{'exposure':>9s} {'modes':>6s} {'effort (min)':>13s}"
    )
    print(header)
    print("-" * len(header))
    for row in comparison.summary_rows():
        print(
            f"{row['technique']:18s} {row['scenario_coverage']:>14.2f} "
            f"{row['fault_type_coverage']:>10.2f} {row['failure_exposure_rate']:>9.2f} "
            f"{row['distinct_failure_modes']:>6d} {row['effort_minutes']:>13.1f}"
        )

    print("\nManual-effort comparison (analytical model):")
    for key, value in orchestrator.efficiency_comparison(SCENARIOS).items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
