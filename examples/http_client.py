"""Talk to the HTTP/JSON serving front-end from plain stdlib clients.

By default this script starts its own server on an ephemeral port (so it is
self-contained); point ``--url`` at a running ``python -m repro serve`` to
use an external one.  It demonstrates the three client patterns from
docs/SERVING.md:

* synchronous ``POST /v1/generate`` — block for the response envelope;
* asynchronous ``POST /v1/generate?async=1`` + ``GET /v1/requests/<id>`` —
  submit a burst from several client threads, poll the tickets (the burst
  coalesces in the engine's continuous-batching scheduler);
* ``GET /v1/stats`` — observe the batching that served the burst.

Wire JSON is decoded through the typed codecs — ``Response.from_dict`` for
envelopes and ``StatsSnapshot.from_dict`` for the stats document — so a typo
in a field name fails loudly instead of returning ``None``.

Run with:
    PYTHONPATH=src python examples/http_client.py
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.request

from repro.api import Response, StatsSnapshot

SCENARIOS = [
    ("Simulate a timeout in the transfer function causing an unhandled exception", "bank"),
    ("Make the withdraw function silently swallow errors instead of raising them", "bank"),
    ("Silently corrupt the amount returned by the transfer function", "bank"),
    ("Remove the overdraft validation check from withdraw", "bank"),
    ("Simulate a timeout in the put function causing an unhandled exception", "kvstore"),
    ("Make the get function silently swallow errors instead of raising them", "kvstore"),
    ("Silently corrupt the value returned by the get function", "kvstore"),
    ("Raise an unexpected exception in delete when the key is missing", "kvstore"),
]
CLIENTS = 4


def call(url: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON exchange: POST when ``body`` is given, GET otherwise."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None, help="base URL of a running server")
    args = parser.parse_args()

    server = None
    url = args.url
    if url is None:
        from repro import PipelineConfig, ServerConfig
        from repro.config import EngineConfig
        from repro.server import serve

        server = serve(
            config=PipelineConfig(engine=EngineConfig(max_queue_delay_seconds=0.02)),
            server_config=ServerConfig(port=0),
        )
        url = server.url
        print(f"started embedded server on {url}")

    try:
        # 1. Synchronous: one request, one typed envelope.
        status, body = call(
            url, "/v1/generate", {"description": SCENARIOS[0][0], "target": "bank"}
        )
        envelope = Response.from_dict(body)
        payload = envelope.payload
        print(f"sync HTTP {status}: {payload['fault']['fault_id']} ({payload['strategy']})")

        # 2. Asynchronous burst from CLIENTS threads, then poll the tickets.
        def submit(offset: int) -> None:
            for index in range(offset, len(SCENARIOS), CLIENTS):
                description, target = SCENARIOS[index]
                call(
                    url,
                    "/v1/generate?async=1",
                    {"description": description, "target": target, "request_id": f"burst-{index}"},
                )

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(len(SCENARIOS)):
            while True:
                status, body = call(url, f"/v1/requests/burst-{index}")
                if status == 200:
                    break
                time.sleep(0.02)
            envelope = Response.from_dict(body)
            print(f"burst-{index}: {envelope.payload['fault']['fault_id']}")

        # 3. Serving observability, decoded into the typed stats document.
        _, body = call(url, "/v1/stats")
        stats = StatsSnapshot.from_dict(body)
        if stats.shards:  # routed through a sharded front-end
            depths = {info.index: info.queue_depth for info in stats.shards}
            print(f"requests_total={stats.aggregate['requests_total']} shard-depths={depths}")
        else:
            sizes = [b["size"] for b in stats.scheduler["batches"] if b["kind"] == "generate"]
            print(f"requests_total={stats.server['requests_total']} generate-batches={sizes}")
    finally:
        if server is not None:
            server.close()
            print("embedded server drained and closed")


if __name__ == "__main__":
    main()
